#include "exec/operators.h"

#include <algorithm>
#include <cassert>
#include <numeric>

namespace blas {

PerAltDeltas BuildPerAltDeltas(const PlanPart& part) {
  PerAltDeltas table;
  table.reserve(part.alts.size());
  for (const PlanAlt& alt : part.alts) {
    // Unfold alternatives are equality selections (lo == hi).
    table.emplace_back(alt.range.lo, alt.anchor_deltas);
  }
  std::sort(table.begin(), table.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return table;
}

bool AnchorSweep::Matches(const NodeRecord& desc, const JoinPred& pred) {
  // Bring in anchors that start before this candidate; drop finished
  // ones (cf. SemiMarkDescs).
  while (next_ < anchors_.size() && anchors_[next_].start < desc.start) {
    while (!stack_.empty() &&
           anchors_[stack_.back()].end < anchors_[next_].start) {
      stack_.pop_back();
    }
    stack_.push_back(next_);
    ++next_;
  }
  while (!stack_.empty() && anchors_[stack_.back()].end < desc.start) {
    stack_.pop_back();
  }
  for (size_t idx : stack_) {
    if (pred.LevelOk(anchors_[idx], desc)) return true;
  }
  return false;
}

void SortUniqueByStart(std::vector<DLabel>* labels) {
  std::sort(labels->begin(), labels->end(),
            [](const DLabel& a, const DLabel& b) { return a.start < b.start; });
  labels->erase(std::unique(labels->begin(), labels->end(),
                            [](const DLabel& a, const DLabel& b) {
                              return a.start == b.start;
                            }),
                labels->end());
}

bool JoinPred::LevelOk(const DLabel& anc, const NodeRecord& desc) const {
  switch (kind) {
    case PlanPart::Join::kNone:
    case PlanPart::Join::kContain:
      return true;
    case PlanPart::Join::kContainMin:
      return desc.level >= anc.level + delta;
    case PlanPart::Join::kContainExact:
      return desc.level == anc.level + delta;
    case PlanPart::Join::kContainPerAlt: {
      assert(per_alt != nullptr);
      auto it = std::lower_bound(
          per_alt->begin(), per_alt->end(), desc.plabel,
          [](const auto& entry, const PLabel& p) { return entry.first < p; });
      if (it == per_alt->end() || it->first != desc.plabel) return false;
      int32_t d = desc.level - anc.level;
      return std::binary_search(it->second.begin(), it->second.end(), d);
    }
  }
  return false;
}

namespace {

/// A run of rows sharing one anchor binding.
struct AnchorGroup {
  DLabel label;
  size_t begin = 0;  // [begin, end) into the sorted row-index array
  size_t end = 0;
};

/// Groups row indices by their anchor column binding, sorted by start.
std::vector<AnchorGroup> GroupRowsByAnchor(const std::vector<Row>& rows,
                                           int anchor_col,
                                           std::vector<size_t>* order) {
  order->resize(rows.size());
  std::iota(order->begin(), order->end(), 0);
  std::sort(order->begin(), order->end(), [&](size_t a, size_t b) {
    return rows[a][anchor_col].start < rows[b][anchor_col].start;
  });
  std::vector<AnchorGroup> groups;
  size_t i = 0;
  while (i < order->size()) {
    const DLabel& label = rows[(*order)[i]][anchor_col];
    size_t j = i;
    while (j < order->size() &&
           rows[(*order)[j]][anchor_col].start == label.start) {
      ++j;
    }
    groups.push_back(AnchorGroup{label, i, j});
    i = j;
  }
  return groups;
}

}  // namespace

std::vector<Row> StructuralJoinRows(const std::vector<Row>& rows,
                                    int anchor_col,
                                    const std::vector<NodeRecord>& descs,
                                    const JoinPred& pred) {
  std::vector<Row> out;
  if (rows.empty() || descs.empty()) return out;

  std::vector<size_t> order;
  std::vector<AnchorGroup> groups = GroupRowsByAnchor(rows, anchor_col,
                                                      &order);
  std::vector<size_t> stack;  // indices into groups; nested chain
  size_t g = 0;
  for (const NodeRecord& desc : descs) {
    // Bring in anchors that start before this desc; drop finished ones.
    while (g < groups.size() && groups[g].label.start < desc.start) {
      while (!stack.empty() &&
             groups[stack.back()].label.end < groups[g].label.start) {
        stack.pop_back();
      }
      stack.push_back(g);
      ++g;
    }
    while (!stack.empty() && groups[stack.back()].label.end < desc.start) {
      stack.pop_back();
    }
    // Every remaining stack entry strictly contains `desc` (intervals of a
    // well-formed document either nest or are disjoint).
    for (size_t idx : stack) {
      const AnchorGroup& grp = groups[idx];
      if (!pred.LevelOk(grp.label, desc)) continue;
      for (size_t r = grp.begin; r < grp.end; ++r) {
        Row row = rows[order[r]];
        row.push_back(desc.dlabel());
        out.push_back(std::move(row));
      }
    }
  }
  return out;
}

std::vector<char> SemiMarkAnchors(const std::vector<NodeRecord>& anchors,
                                  const std::vector<NodeRecord>& descs,
                                  const std::vector<char>& desc_alive,
                                  const JoinPred& pred) {
  std::vector<char> marked(anchors.size(), 0);
  std::vector<size_t> stack;
  size_t a = 0;
  for (size_t j = 0; j < descs.size(); ++j) {
    if (!desc_alive.empty() && !desc_alive[j]) continue;
    const NodeRecord& desc = descs[j];
    while (a < anchors.size() && anchors[a].start < desc.start) {
      while (!stack.empty() && anchors[stack.back()].end < anchors[a].start) {
        stack.pop_back();
      }
      stack.push_back(a);
      ++a;
    }
    while (!stack.empty() && anchors[stack.back()].end < desc.start) {
      stack.pop_back();
    }
    for (size_t idx : stack) {
      if (!marked[idx] || pred.kind != PlanPart::Join::kContain) {
        if (pred.LevelOk(anchors[idx].dlabel(), desc)) marked[idx] = 1;
      }
    }
  }
  return marked;
}

std::vector<char> SemiMarkDescs(const std::vector<NodeRecord>& anchors,
                                const std::vector<char>& anchor_alive,
                                const std::vector<NodeRecord>& descs,
                                const JoinPred& pred) {
  std::vector<char> marked(descs.size(), 0);
  std::vector<size_t> stack;
  size_t a = 0;
  for (size_t j = 0; j < descs.size(); ++j) {
    const NodeRecord& desc = descs[j];
    while (a < anchors.size() && anchors[a].start < desc.start) {
      while (!stack.empty() && anchors[stack.back()].end < anchors[a].start) {
        stack.pop_back();
      }
      stack.push_back(a);
      ++a;
    }
    while (!stack.empty() && anchors[stack.back()].end < desc.start) {
      stack.pop_back();
    }
    for (size_t idx : stack) {
      if (!anchor_alive.empty() && !anchor_alive[idx]) continue;
      if (pred.LevelOk(anchors[idx].dlabel(), desc)) {
        marked[j] = 1;
        break;
      }
    }
  }
  return marked;
}

}  // namespace blas

#ifndef BLAS_EXEC_OPERATORS_H_
#define BLAS_EXEC_OPERATORS_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "exec/plan.h"
#include "labeling/dlabel.h"
#include "labeling/node_record.h"

namespace blas {

/// Sorted (plabel -> valid anchor level distances) table for Unfold parts.
using PerAltDeltas = std::vector<std::pair<PLabel, std::vector<int32_t>>>;

/// Restores document order and drops duplicate bindings (equal starts name
/// the same element) — the projection step shared by both engines' result
/// and anchor lists.
void SortUniqueByStart(std::vector<DLabel>* labels);

/// Builds the per-alternative delta table of an Unfold plan part.
PerAltDeltas BuildPerAltDeltas(const PlanPart& part);

/// \brief Evaluable D-join predicate between an anchor binding and a
/// descendant-side record (section 3.1 + the level refinements of 4.1).
struct JoinPred {
  PlanPart::Join kind = PlanPart::Join::kContain;
  int delta = 0;
  const PerAltDeltas* per_alt = nullptr;  // required for kContainPerAlt

  /// Containment is checked by the sweep; this evaluates the residual
  /// level condition only.
  bool LevelOk(const DLabel& anc, const NodeRecord& desc) const;
};

/// One intermediate tuple of the relational executor: the D-label binding
/// of every part processed so far (column i = plan part i).
using Row = std::vector<DLabel>;

/// \brief Structural merge join (stack-based interval sweep).
///
/// Extends each row whose anchor column strictly contains a `descs` record
/// satisfying `pred`. `descs` must be sorted by start; rows are re-sorted
/// internally. Output rows have one extra column (the desc binding) and
/// arbitrary order. Runs in O((rows + descs) * depth + output).
std::vector<Row> StructuralJoinRows(const std::vector<Row>& rows,
                                    int anchor_col,
                                    const std::vector<NodeRecord>& descs,
                                    const JoinPred& pred);

/// Semi-join marking of the anchor side: result[i] is 1 iff anchors[i]
/// strictly contains some desc with desc_alive set and `pred` satisfied.
/// Both inputs sorted by start.
std::vector<char> SemiMarkAnchors(const std::vector<NodeRecord>& anchors,
                                  const std::vector<NodeRecord>& descs,
                                  const std::vector<char>& desc_alive,
                                  const JoinPred& pred);

/// Semi-join marking of the descendant side: result[j] is 1 iff descs[j]
/// is strictly contained in some anchor with anchor_alive set and `pred`
/// satisfied. Both inputs sorted by start.
std::vector<char> SemiMarkDescs(const std::vector<NodeRecord>& anchors,
                                const std::vector<char>& anchor_alive,
                                const std::vector<NodeRecord>& descs,
                                const JoinPred& pred);

/// \brief Incremental form of the sweep the batch operators above run:
/// anchors sorted by start, candidates fed in ascending start order, a
/// stack of the anchors containing the current position (intervals of a
/// well-formed document either nest or are disjoint). The streaming
/// cursor probes one candidate at a time instead of marking a whole
/// stream.
class AnchorSweep {
 public:
  AnchorSweep() = default;
  /// `anchors` must be sorted by start.
  explicit AnchorSweep(std::vector<DLabel> anchors)
      : anchors_(std::move(anchors)) {}

  bool empty() const { return anchors_.empty(); }

  /// True iff some anchor strictly contains `desc` and satisfies `pred`.
  /// Successive calls must not decrease desc.start.
  bool Matches(const NodeRecord& desc, const JoinPred& pred);

 private:
  std::vector<DLabel> anchors_;
  size_t next_ = 0;
  std::vector<size_t> stack_;
};

}  // namespace blas

#endif  // BLAS_EXEC_OPERATORS_H_

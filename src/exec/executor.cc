#include "exec/executor.h"

#include <algorithm>
#include <queue>

#include "exec/operators.h"

namespace blas {

namespace {

/// Restores document order (start ascending) on a tuple list that is a
/// concatenation of start-sorted runs (one per distinct plabel, as
/// produced by SP range scans). A k-way merge is O(n log k) versus the
/// O(n log n) full sort, and k is the number of distinct source paths in
/// the range -- usually small.
void SortByStartRunAware(std::vector<NodeRecord>* tuples) {
  std::vector<std::pair<size_t, size_t>> runs;  // [begin, end)
  size_t begin = 0;
  for (size_t i = 1; i <= tuples->size(); ++i) {
    if (i == tuples->size() || (*tuples)[i].start < (*tuples)[i - 1].start) {
      runs.emplace_back(begin, i);
      begin = i;
    }
  }
  if (runs.size() <= 1) return;

  struct Head {
    uint32_t start;
    size_t run;
  };
  auto cmp = [](const Head& a, const Head& b) { return a.start > b.start; };
  std::priority_queue<Head, std::vector<Head>, decltype(cmp)> heap(cmp);
  std::vector<size_t> cursor(runs.size());
  for (size_t r = 0; r < runs.size(); ++r) {
    cursor[r] = runs[r].first;
    heap.push(Head{(*tuples)[runs[r].first].start, r});
  }
  std::vector<NodeRecord> merged;
  merged.reserve(tuples->size());
  while (!heap.empty()) {
    Head head = heap.top();
    heap.pop();
    merged.push_back((*tuples)[cursor[head.run]]);
    if (++cursor[head.run] < runs[head.run].second) {
      heap.push(Head{(*tuples)[cursor[head.run]].start, head.run});
    }
  }
  *tuples = std::move(merged);
}

}  // namespace

std::vector<NodeRecord> FetchPartTuples(const PlanPart& part,
                                        const NodeStore& store,
                                        const StringDict& dict) {
  std::optional<uint32_t> data;
  bool residual_filter = false;
  if (part.value.has_value()) {
    if (part.value->op == ValueOp::kEq && !part.value->literal.empty()) {
      // Equality fast path: one dictionary lookup turns the predicate
      // into an integer comparison inside the scan.
      auto id = dict.Find(part.value->literal);
      if (!id.has_value()) return {};  // value never occurs: empty scan
      data = *id;
    } else {
      residual_filter = true;
    }
  }

  std::vector<NodeRecord> tuples;
  switch (part.scan) {
    case PlanPart::Scan::kPlabelAlts:
      for (const PlanAlt& alt : part.alts) {
        std::vector<NodeRecord> chunk =
            store.ScanPlabelRange(alt.range, data, part.level_eq);
        tuples.insert(tuples.end(), chunk.begin(), chunk.end());
      }
      break;
    case PlanPart::Scan::kTag: {
      tuples = store.ScanTag(part.tag, data);
      if (part.level_eq.has_value()) {
        std::erase_if(tuples, [&](const NodeRecord& r) {
          return r.level != *part.level_eq;
        });
      }
      break;
    }
    case PlanPart::Scan::kAllTags: {
      tuples = store.ScanAll(data);
      if (part.level_eq.has_value()) {
        std::erase_if(tuples, [&](const NodeRecord& r) {
          return r.level != *part.level_eq;
        });
      }
      break;
    }
  }
  if (residual_filter) {
    // Comparison operators decode the data column (a node without
    // character data compares as the empty string).
    std::erase_if(tuples, [&](const NodeRecord& rec) {
      std::string_view text =
          rec.data == kNullData ? std::string_view() : dict.Get(rec.data);
      return !part.value->Matches(text);
    });
  }
  SortByStartRunAware(&tuples);
  return tuples;
}

Result<std::vector<uint32_t>> RelationalExecutor::Execute(
    const ExecPlan& plan, ExecStats* stats) const {
  if (plan.parts.empty()) {
    return Status::InvalidArgument("empty plan");
  }
  // Count exactly this query's storage accesses on this thread; the
  // store-wide counters keep accumulating globally, but diffing them
  // would attribute other threads' concurrent accesses to this query.
  ReadCounters counters;
  ReadCounterScope scope(&counters);
  ExecStats local;

  // Materialize part 0, then fold in every other part with one D-join.
  std::vector<Row> rows;
  {
    std::vector<NodeRecord> tuples =
        FetchPartTuples(plan.parts[0], *store_, *dict_);
    rows.reserve(tuples.size());
    for (const NodeRecord& rec : tuples) rows.push_back(Row{rec.dlabel()});
  }

  std::vector<PerAltDeltas> alt_tables(plan.parts.size());
  for (size_t i = 1; i < plan.parts.size(); ++i) {
    const PlanPart& part = plan.parts[i];
    // The scan happens regardless of the intermediate result (a relational
    // engine materializes each base input of the join).
    std::vector<NodeRecord> tuples = FetchPartTuples(part, *store_, *dict_);
    JoinPred pred;
    pred.kind = part.join;
    pred.delta = part.delta;
    if (part.join == PlanPart::Join::kContainPerAlt) {
      alt_tables[i] = BuildPerAltDeltas(part);
      pred.per_alt = &alt_tables[i];
    }
    rows = StructuralJoinRows(rows, part.anchor, tuples, pred);
    ++local.d_joins;
    local.intermediate_rows += rows.size();
    if (rows.empty() && i + 1 < plan.parts.size()) {
      // Keep fetching remaining inputs (they are part of the plan's cost)
      // but no further join work is needed.
      for (size_t j = i + 1; j < plan.parts.size(); ++j) {
        (void)FetchPartTuples(plan.parts[j], *store_, *dict_);
        ++local.d_joins;
      }
      break;
    }
  }

  std::vector<uint32_t> result;
  result.reserve(rows.size());
  for (const Row& row : rows) {
    result.push_back(row[plan.return_part].start);
  }
  std::sort(result.begin(), result.end());
  result.erase(std::unique(result.begin(), result.end()), result.end());

  if (stats != nullptr) {
    local.elements = counters.elements;
    local.page_fetches = counters.fetches;
    local.page_misses = counters.misses;
    local.output_rows = result.size();
    *stats += local;
  }
  return result;
}

}  // namespace blas

#include "exec/executor.h"

#include <algorithm>
#include <queue>

#include "exec/operators.h"

namespace blas {

namespace {

/// Restores document order (start ascending) on a tuple list that is a
/// concatenation of start-sorted runs (one per distinct plabel, as
/// produced by SP range scans). A k-way merge is O(n log k) versus the
/// O(n log n) full sort, and k is the number of distinct source paths in
/// the range -- usually small.
void SortByStartRunAware(std::vector<NodeRecord>* tuples) {
  std::vector<std::pair<size_t, size_t>> runs;  // [begin, end)
  size_t begin = 0;
  for (size_t i = 1; i <= tuples->size(); ++i) {
    if (i == tuples->size() || (*tuples)[i].start < (*tuples)[i - 1].start) {
      runs.emplace_back(begin, i);
      begin = i;
    }
  }
  if (runs.size() <= 1) return;

  struct Head {
    uint32_t start;
    size_t run;
  };
  auto cmp = [](const Head& a, const Head& b) { return a.start > b.start; };
  std::priority_queue<Head, std::vector<Head>, decltype(cmp)> heap(cmp);
  std::vector<size_t> cursor(runs.size());
  for (size_t r = 0; r < runs.size(); ++r) {
    cursor[r] = runs[r].first;
    heap.push(Head{(*tuples)[runs[r].first].start, r});
  }
  std::vector<NodeRecord> merged;
  merged.reserve(tuples->size());
  while (!heap.empty()) {
    Head head = heap.top();
    heap.pop();
    merged.push_back((*tuples)[cursor[head.run]]);
    if (++cursor[head.run] < runs[head.run].second) {
      heap.push(Head{(*tuples)[cursor[head.run]].start, head.run});
    }
  }
  *tuples = std::move(merged);
}

}  // namespace

std::vector<NodeRecord> FetchPartTuples(const PlanPart& part,
                                        const NodeStore& store,
                                        const StringDict& dict) {
  std::optional<uint32_t> data;
  bool residual_filter = false;
  if (part.value.has_value()) {
    if (part.value->op == ValueOp::kEq && !part.value->literal.empty()) {
      // Equality fast path: one dictionary lookup turns the predicate
      // into an integer comparison inside the scan.
      auto id = dict.Find(part.value->literal);
      if (!id.has_value()) return {};  // value never occurs: empty scan
      data = *id;
    } else {
      residual_filter = true;
    }
  }

  std::vector<NodeRecord> tuples;
  switch (part.scan) {
    case PlanPart::Scan::kPlabelAlts:
      for (const PlanAlt& alt : part.alts) {
        std::vector<NodeRecord> chunk =
            store.ScanPlabelRange(alt.range, data, part.level_eq);
        tuples.insert(tuples.end(), chunk.begin(), chunk.end());
      }
      break;
    case PlanPart::Scan::kTag: {
      tuples = store.ScanTag(part.tag, data);
      if (part.level_eq.has_value()) {
        std::erase_if(tuples, [&](const NodeRecord& r) {
          return r.level != *part.level_eq;
        });
      }
      break;
    }
    case PlanPart::Scan::kAllTags: {
      tuples = store.ScanAll(data);
      if (part.level_eq.has_value()) {
        std::erase_if(tuples, [&](const NodeRecord& r) {
          return r.level != *part.level_eq;
        });
      }
      break;
    }
  }
  if (residual_filter) {
    // Comparison operators decode the data column (a node without
    // character data compares as the empty string — which fails every
    // ordered comparison under the numeric XPath 1.0 semantics of
    // ValuePred::Matches).
    std::erase_if(tuples, [&](const NodeRecord& rec) {
      std::string_view text =
          rec.data == kNullData ? std::string_view() : dict.Get(rec.data);
      return !part.value->Matches(text);
    });
  }
  SortByStartRunAware(&tuples);
  return tuples;
}

namespace {

/// Materializes part 0, then folds every other (non-skipped) part in with
/// one D-join. `skip` < 0 processes the whole plan; otherwise the (leaf)
/// part `skip` is left out and row columns follow processing order (part
/// index minus one past the skip) — see ColOf. Once the intermediate
/// result empties, remaining inputs are still fetched (they are part of
/// the plan's cost) but no further join work happens.
int ColOf(int part, int skip) {
  return skip >= 0 && part > skip ? part - 1 : part;
}

std::vector<Row> FoldJoins(const ExecPlan& plan, int skip,
                           const NodeStore& store, const StringDict& dict,
                           ExecStats* local) {
  std::vector<Row> rows;
  {
    std::vector<NodeRecord> tuples = FetchPartTuples(plan.parts[0], store,
                                                     dict);
    rows.reserve(tuples.size());
    for (const NodeRecord& rec : tuples) rows.push_back(Row{rec.dlabel()});
  }

  std::vector<PerAltDeltas> alt_tables(plan.parts.size());
  bool dead = false;
  for (size_t i = 1; i < plan.parts.size(); ++i) {
    if (static_cast<int>(i) == skip) continue;
    const PlanPart& part = plan.parts[i];
    // The scan happens regardless of the intermediate result (a relational
    // engine materializes each base input of the join).
    std::vector<NodeRecord> tuples = FetchPartTuples(part, store, dict);
    ++local->d_joins;
    if (dead) continue;
    JoinPred pred;
    pred.kind = part.join;
    pred.delta = part.delta;
    if (part.join == PlanPart::Join::kContainPerAlt) {
      alt_tables[i] = BuildPerAltDeltas(part);
      pred.per_alt = &alt_tables[i];
    }
    rows = StructuralJoinRows(rows, ColOf(part.anchor, skip), tuples, pred);
    local->intermediate_rows += rows.size();
    if (rows.empty()) dead = true;
  }
  return rows;
}

}  // namespace

Result<std::vector<uint32_t>> RelationalExecutor::Execute(
    const ExecPlan& plan, ExecStats* stats) const {
  BLAS_ASSIGN_OR_RETURN(std::vector<DLabel> bindings,
                        ExecuteBindings(plan, stats));
  std::vector<uint32_t> result;
  result.reserve(bindings.size());
  for (const DLabel& binding : bindings) result.push_back(binding.start);
  return result;
}

Result<std::vector<DLabel>> RelationalExecutor::ExecuteBindings(
    const ExecPlan& plan, ExecStats* stats) const {
  if (plan.parts.empty()) {
    return Status::InvalidArgument("empty plan");
  }
  // Count exactly this query's storage accesses on this thread; the
  // store-wide counters keep accumulating globally, but diffing them
  // would attribute other threads' concurrent accesses to this query.
  ReadCounters counters;
  ReadCounterScope scope(&counters);
  ExecStats local;

  std::vector<Row> rows = FoldJoins(plan, /*skip=*/-1, *store_, *dict_,
                                    &local);

  std::vector<DLabel> result;
  result.reserve(rows.size());
  for (const Row& row : rows) result.push_back(row[plan.return_part]);
  SortUniqueByStart(&result);

  if (stats != nullptr) {
    local.elements = counters.elements;
    local.page_fetches = counters.fetches;
    local.page_misses = counters.misses;
    local.io_reads = counters.io_reads;
    local.output_rows = result.size();
    *stats += local;
  }
  return result;
}

Result<std::vector<DLabel>> RelationalExecutor::MatchedAnchors(
    const ExecPlan& plan, size_t skip, ExecStats* stats) const {
  if (plan.parts.size() < 2 || skip == 0 || skip >= plan.parts.size()) {
    return Status::InvalidArgument("MatchedAnchors needs an anchored part");
  }
  ReadCounters counters;
  ReadCounterScope scope(&counters);
  ExecStats local;

  std::vector<Row> rows = FoldJoins(plan, static_cast<int>(skip), *store_,
                                    *dict_, &local);

  const int anchor_col = ColOf(plan.parts[skip].anchor,
                               static_cast<int>(skip));
  std::vector<DLabel> anchors;
  anchors.reserve(rows.size());
  for (const Row& row : rows) anchors.push_back(row[anchor_col]);
  SortUniqueByStart(&anchors);

  if (stats != nullptr) {
    local.elements = counters.elements;
    local.page_fetches = counters.fetches;
    local.page_misses = counters.misses;
    local.io_reads = counters.io_reads;
    *stats += local;
  }
  return anchors;
}

}  // namespace blas

#include "twig/twig.h"

#include <algorithm>

#include "exec/operators.h"

namespace blas {

namespace {

/// Output of the two arc-consistency passes: per part, the element
/// stream and the marks of elements participating in a full match of the
/// evaluated pattern.
struct TwigPasses {
  std::vector<std::vector<NodeRecord>> streams;
  /// matched[i][e] <=> streams[i][e] is in at least one full match
  /// (alive ∧ reachable).
  std::vector<std::vector<char>> matched;
};

/// Loads the streams and runs the bottom-up and top-down passes over the
/// plan's part tree. `skip` < 0 evaluates the whole pattern; otherwise the
/// (leaf) part `skip` is left out — the cursor's streaming prefix.
TwigPasses RunPasses(const ExecPlan& plan, int skip, const NodeStore& store,
                     const StringDict& dict, ExecStats* local) {
  const size_t n = plan.parts.size();
  TwigPasses out;

  // Load all evaluated streams (each stream is read exactly once).
  out.streams.resize(n);
  for (size_t i = 0; i < n; ++i) {
    if (static_cast<int>(i) == skip) continue;
    out.streams[i] = FetchPartTuples(plan.parts[i], store, dict);
  }

  std::vector<PerAltDeltas> alt_tables(n);
  auto pred_of = [&](size_t i) {
    JoinPred pred;
    pred.kind = plan.parts[i].join;
    pred.delta = plan.parts[i].delta;
    if (pred.kind == PlanPart::Join::kContainPerAlt) {
      if (alt_tables[i].empty()) {
        alt_tables[i] = BuildPerAltDeltas(plan.parts[i]);
      }
      pred.per_alt = &alt_tables[i];
    }
    return pred;
  };

  // Bottom-up pass: alive[i][e] <=> the pattern subtree below part i can
  // be embedded with e as part i's binding. Children have larger indices,
  // so a reverse scan finalizes each part before it is used as a child.
  std::vector<std::vector<char>> alive(n);
  for (size_t i = 0; i < n; ++i) alive[i].assign(out.streams[i].size(), 1);
  for (size_t i = n; i-- > 1;) {
    if (static_cast<int>(i) == skip) continue;
    int anchor = plan.parts[i].anchor;
    std::vector<char> support = SemiMarkAnchors(
        out.streams[anchor], out.streams[i], alive[i], pred_of(i));
    ++local->d_joins;
    for (size_t e = 0; e < alive[anchor].size(); ++e) {
      alive[anchor][e] = alive[anchor][e] && support[e];
    }
  }

  // Top-down pass: reachable[i][e] <=> e additionally extends to a match
  // of everything outside part i's subtree.
  out.matched.resize(n);
  out.matched[0] = alive[0];
  for (size_t i = 1; i < n; ++i) {
    if (static_cast<int>(i) == skip) continue;
    int anchor = plan.parts[i].anchor;
    std::vector<char> down = SemiMarkDescs(out.streams[anchor],
                                           out.matched[anchor],
                                           out.streams[i], pred_of(i));
    out.matched[i].assign(out.streams[i].size(), 0);
    for (size_t e = 0; e < down.size(); ++e) {
      out.matched[i][e] = down[e] && alive[i][e];
    }
  }
  return out;
}

}  // namespace

Result<std::vector<uint32_t>> TwigEngine::Execute(const ExecPlan& plan,
                                                  ExecStats* stats) const {
  BLAS_ASSIGN_OR_RETURN(std::vector<DLabel> bindings,
                        ExecuteBindings(plan, stats));
  std::vector<uint32_t> result;
  result.reserve(bindings.size());
  for (const DLabel& binding : bindings) result.push_back(binding.start);
  return result;
}

Result<std::vector<DLabel>> TwigEngine::ExecuteBindings(
    const ExecPlan& plan, ExecStats* stats) const {
  if (plan.parts.empty()) {
    return Status::InvalidArgument("empty plan");
  }
  // Per-thread attribution; see RelationalExecutor::Execute.
  ReadCounters counters;
  ReadCounterScope scope(&counters);
  ExecStats local;

  TwigPasses passes = RunPasses(plan, /*skip=*/-1, *store_, *dict_, &local);

  std::vector<DLabel> result;
  const auto& ret_stream = passes.streams[plan.return_part];
  const auto& ret_matched = passes.matched[plan.return_part];
  for (size_t e = 0; e < ret_stream.size(); ++e) {
    if (ret_matched[e]) result.push_back(ret_stream[e].dlabel());
  }
  SortUniqueByStart(&result);

  if (stats != nullptr) {
    local.elements = counters.elements;
    local.page_fetches = counters.fetches;
    local.page_misses = counters.misses;
    local.io_reads = counters.io_reads;
    local.output_rows = result.size();
    *stats += local;
  }
  return result;
}

Result<std::vector<DLabel>> TwigEngine::MatchedAnchors(const ExecPlan& plan,
                                                       size_t skip,
                                                       ExecStats* stats) const {
  if (plan.parts.size() < 2 || skip == 0 || skip >= plan.parts.size()) {
    return Status::InvalidArgument("MatchedAnchors needs an anchored part");
  }
  ReadCounters counters;
  ReadCounterScope scope(&counters);
  ExecStats local;

  TwigPasses passes =
      RunPasses(plan, static_cast<int>(skip), *store_, *dict_, &local);

  const int a = plan.parts[skip].anchor;
  std::vector<DLabel> anchors;
  for (size_t e = 0; e < passes.streams[a].size(); ++e) {
    if (passes.matched[a][e]) anchors.push_back(passes.streams[a][e].dlabel());
  }
  SortUniqueByStart(&anchors);

  if (stats != nullptr) {
    local.elements = counters.elements;
    local.page_fetches = counters.fetches;
    local.page_misses = counters.misses;
    local.io_reads = counters.io_reads;
    *stats += local;
  }
  return anchors;
}

}  // namespace blas

#include "twig/twig.h"

#include <algorithm>

#include "exec/operators.h"

namespace blas {

Result<std::vector<uint32_t>> TwigEngine::Execute(const ExecPlan& plan,
                                                  ExecStats* stats) const {
  if (plan.parts.empty()) {
    return Status::InvalidArgument("empty plan");
  }
  // Per-thread attribution; see RelationalExecutor::Execute.
  ReadCounters counters;
  ReadCounterScope scope(&counters);
  ExecStats local;
  const size_t n = plan.parts.size();

  // Load all streams (each stream is read exactly once).
  std::vector<std::vector<NodeRecord>> streams(n);
  for (size_t i = 0; i < n; ++i) {
    streams[i] = FetchPartTuples(plan.parts[i], *store_, *dict_);
  }

  std::vector<PerAltDeltas> alt_tables(n);
  auto pred_of = [&](size_t i) {
    JoinPred pred;
    pred.kind = plan.parts[i].join;
    pred.delta = plan.parts[i].delta;
    if (pred.kind == PlanPart::Join::kContainPerAlt) {
      if (alt_tables[i].empty()) {
        alt_tables[i] = BuildPerAltDeltas(plan.parts[i]);
      }
      pred.per_alt = &alt_tables[i];
    }
    return pred;
  };

  // Bottom-up pass: alive[i][e] <=> the pattern subtree below part i can
  // be embedded with e as part i's binding. Children have larger indices,
  // so a reverse scan finalizes each part before it is used as a child.
  std::vector<std::vector<char>> alive(n);
  for (size_t i = 0; i < n; ++i) alive[i].assign(streams[i].size(), 1);
  for (size_t i = n; i-- > 1;) {
    int anchor = plan.parts[i].anchor;
    std::vector<char> support = SemiMarkAnchors(
        streams[anchor], streams[i], alive[i], pred_of(i));
    ++local.d_joins;
    for (size_t e = 0; e < alive[anchor].size(); ++e) {
      alive[anchor][e] = alive[anchor][e] && support[e];
    }
  }

  // Top-down pass: reachable[i][e] <=> e additionally extends to a match
  // of everything outside part i's subtree.
  std::vector<std::vector<char>> reachable(n);
  reachable[0] = alive[0];
  for (size_t i = 1; i < n; ++i) {
    int anchor = plan.parts[i].anchor;
    std::vector<char> down = SemiMarkDescs(streams[anchor],
                                           reachable[anchor], streams[i],
                                           pred_of(i));
    reachable[i].assign(streams[i].size(), 0);
    for (size_t e = 0; e < down.size(); ++e) {
      reachable[i][e] = down[e] && alive[i][e];
    }
  }

  std::vector<uint32_t> result;
  const auto& ret_stream = streams[plan.return_part];
  const auto& ret_alive = reachable[plan.return_part];
  for (size_t e = 0; e < ret_stream.size(); ++e) {
    if (ret_alive[e]) result.push_back(ret_stream[e].start);
  }
  std::sort(result.begin(), result.end());
  result.erase(std::unique(result.begin(), result.end()), result.end());

  if (stats != nullptr) {
    local.elements = counters.elements;
    local.page_fetches = counters.fetches;
    local.page_misses = counters.misses;
    local.output_rows = result.size();
    *stats += local;
  }
  return result;
}

}  // namespace blas

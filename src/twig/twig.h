#ifndef BLAS_TWIG_TWIG_H_
#define BLAS_TWIG_TWIG_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "exec/executor.h"
#include "exec/plan.h"
#include "storage/node_store.h"
#include "storage/string_dict.h"

namespace blas {

/// \brief Holistic twig join engine (the paper's second query engine,
/// section 5.3, after Bruno et al.'s TwigStack).
///
/// Each plan part contributes one element stream sorted by document order.
/// The twig match is computed holistically: every stream is read exactly
/// once and matched with stack-based interval sweeps — a bottom-up pass
/// establishes, per element, whether the pattern subtree below it can be
/// embedded, and a top-down pass keeps exactly the elements participating
/// in at least one full twig match (for a tree pattern, this arc-
/// consistency pair is equivalent to enumerating TwigStack's merged path
/// solutions and projecting the return node, without materializing any
/// path solution). Memory is O(streams * depth) beyond the streams.
class TwigEngine {
 public:
  TwigEngine(const NodeStore* store, const StringDict* dict)
      : store_(store), dict_(dict) {}

  /// Returns the distinct, sorted start positions of return-part elements
  /// that participate in at least one full twig match.
  Result<std::vector<uint32_t>> Execute(const ExecPlan& plan,
                                        ExecStats* stats) const;

  /// Same execution, but returns the return part's full D-label bindings
  /// (distinct by start, sorted) — cursors enumerate these without
  /// per-match point lookups.
  Result<std::vector<DLabel>> ExecuteBindings(const ExecPlan& plan,
                                              ExecStats* stats) const;

  /// \brief Streaming prefix: runs both arc-consistency passes with part
  /// `skip` (a leaf of the part tree) left out and returns the D-labels of
  /// `skip`'s anchor-part elements that participate in a match of the
  /// remaining pattern, sorted by start.
  ///
  /// The caller then emits `skip`-part matches as its stream advances
  /// against these bindings (limit-k early termination). Requires
  /// plan.parts.size() >= 2, skip >= 1, and that no other part anchors
  /// into `skip`.
  Result<std::vector<DLabel>> MatchedAnchors(const ExecPlan& plan,
                                             size_t skip,
                                             ExecStats* stats) const;

 private:
  const NodeStore* store_;
  const StringDict* dict_;
};

}  // namespace blas

#endif  // BLAS_TWIG_TWIG_H_

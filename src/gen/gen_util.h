#ifndef BLAS_GEN_GEN_UTIL_H_
#define BLAS_GEN_GEN_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/rng.h"
#include "xml/sax.h"

namespace blas {

/// \brief Small helper wrapping a SaxHandler with convenience emitters
/// used by the dataset generators.
class Emitter {
 public:
  explicit Emitter(SaxHandler* handler) : handler_(handler) {}

  void Open(std::string_view tag) {
    handler_->OnStartElement(tag, kNoAttrs);
  }
  void Open(std::string_view tag, const std::vector<XmlAttribute>& attrs) {
    handler_->OnStartElement(tag, attrs);
  }
  void Close(std::string_view tag) { handler_->OnEndElement(tag); }
  void Text(std::string_view text) { handler_->OnText(text); }

  /// <tag>text</tag>
  void Leaf(std::string_view tag, std::string_view text) {
    Open(tag);
    Text(text);
    Close(tag);
  }
  /// <tag/>
  void Empty(std::string_view tag) {
    Open(tag);
    Close(tag);
  }

 private:
  static const std::vector<XmlAttribute> kNoAttrs;
  SaxHandler* handler_;
};

inline const std::vector<XmlAttribute> Emitter::kNoAttrs = {};

/// Deterministic pseudo-words for filler text.
std::string FillerWords(Rng* rng, int words);

/// A person-style name like "Evans, M.J." from a fixed pool (index mod
/// pool size).
std::string PersonName(uint64_t index);

}  // namespace blas

#endif  // BLAS_GEN_GEN_UTIL_H_

#include "gen/generator.h"

#include "gen/gen_util.h"

namespace blas {

namespace {

constexpr const char* kSuperfamilies[] = {
    "cytochrome c",  // the paper's running-example value
    "globin", "kinase", "protease inhibitor", "immunoglobulin",
};

constexpr const char* kOrganisms[] = {
    "Homo sapiens", "Mus musculus", "Rattus norvegicus",
    "Saccharomyces cerevisiae", "Drosophila melanogaster",
};

void EmitReference(Emitter* em, Rng* rng) {
  em->Open("reference");
  em->Open("refinfo");
  em->Open("authors");
  int authors = static_cast<int>(rng->Between(2, 5));
  for (int a = 0; a < authors; ++a) {
    em->Leaf("author", PersonName(rng->Next()));
  }
  if (rng->Percent(10)) {
    em->Open("editors");
    em->Leaf("editor", PersonName(rng->Next()));
    em->Close("editors");
  }
  em->Close("authors");
  if (rng->Percent(80)) {
    em->Leaf("citation", "J. Biol. Chem. " + FillerWords(rng, 1));
  }
  if (rng->Percent(25)) em->Leaf("month", std::to_string(rng->Between(1, 12)));
  if (rng->Percent(20)) em->Leaf("publisher", FillerWords(rng, 2));
  em->Leaf("volume", std::to_string(rng->Between(100, 300)));
  em->Leaf("year", std::to_string(rng->Between(1995, 2003)));
  em->Leaf("pages", std::to_string(rng->Between(1, 999)) + "-" +
                        std::to_string(rng->Between(1000, 1999)));
  em->Leaf("title", "The human somatic " + FillerWords(rng, 3) + " gene");
  if (rng->Percent(60)) {
    em->Open("xrefs");
    for (int x = 0; x < 2; ++x) {
      em->Open("xref");
      em->Leaf("db", rng->Percent(50) ? "MEDLINE" : "PIR");
      em->Leaf("uid", std::to_string(rng->Next() % 10000000));
      em->Close("xref");
    }
    em->Close("xrefs");
  }
  em->Close("refinfo");
  if (rng->Percent(50)) {
    em->Open("accinfo");
    em->Leaf("accession", "A" + std::to_string(rng->Next() % 100000));
    em->Leaf("mol-type", "complete");
    em->Leaf("seq-spec", std::to_string(rng->Between(1, 104)));
    em->Close("accinfo");
  }
  em->Close("reference");
}

void EmitProteinEntry(Emitter* em, Rng* rng) {
  em->Open("ProteinEntry");
  em->Open("header");
  em->Leaf("uid", "PIR" + std::to_string(rng->Next() % 1000000));
  em->Leaf("accession", "B" + std::to_string(rng->Next() % 100000));
  em->Leaf("created_date", std::to_string(rng->Between(1985, 2000)));
  em->Leaf("seq-rev_date", std::to_string(rng->Between(1995, 2001)));
  em->Leaf("txt-rev_date", std::to_string(rng->Between(1999, 2001)));
  em->Close("header");

  em->Open("protein");
  em->Leaf("name", "cytochrome c [validated] " + FillerWords(rng, 1));
  em->Open("source");
  em->Open("organism");
  em->Leaf("formal", kOrganisms[rng->Below(5)]);
  em->Leaf("common", FillerWords(rng, 1));
  em->Close("organism");
  em->Close("source");
  em->Open("classification");
  em->Leaf("superfamily", kSuperfamilies[rng->Below(5)]);
  if (rng->Percent(40)) em->Leaf("family", FillerWords(rng, 2));
  if (rng->Percent(25)) em->Leaf("subfamily", FillerWords(rng, 1));
  if (rng->Percent(20)) em->Leaf("domain", FillerWords(rng, 2));
  em->Close("classification");
  if (rng->Percent(60)) {
    em->Open("keywords");
    for (int k = 0; k < 3; ++k) em->Leaf("keyword", FillerWords(rng, 1));
    em->Close("keywords");
  }
  em->Close("protein");

  em->Open("organism");
  em->Leaf("source", kOrganisms[rng->Below(5)]);
  em->Leaf("common", FillerWords(rng, 1));
  if (rng->Percent(15)) em->Leaf("variety", FillerWords(rng, 1));
  if (rng->Percent(10)) em->Leaf("strain", FillerWords(rng, 1));
  em->Close("organism");

  int refs = static_cast<int>(rng->Between(2, 4));
  for (int r = 0; r < refs; ++r) EmitReference(em, rng);

  if (rng->Percent(70)) {
    em->Open("genetics");
    em->Leaf("gene", "CYC" + std::to_string(rng->Below(30)));
    if (rng->Percent(40)) em->Leaf("gene-map", FillerWords(rng, 1));
    if (rng->Percent(30)) em->Leaf("genetic-code", "standard");
    if (rng->Percent(25)) em->Leaf("introns", std::to_string(rng->Below(9)));
    if (rng->Percent(15)) em->Leaf("codon-start", "1");
    if (rng->Percent(20)) em->Leaf("map-position", FillerWords(rng, 1));
    em->Close("genetics");
  }
  if (rng->Percent(40)) {
    em->Open("function");
    em->Leaf("description", FillerWords(rng, 6));
    if (rng->Percent(30)) em->Leaf("note", FillerWords(rng, 4));
    em->Close("function");
  }
  if (rng->Percent(15)) em->Leaf("complex", FillerWords(rng, 2));
  if (rng->Percent(20)) em->Leaf("comment", FillerWords(rng, 5));
  em->Open("summary");
  em->Leaf("length", std::to_string(rng->Between(80, 900)));
  em->Leaf("type", "protein");
  if (rng->Percent(25)) {
    em->Leaf("molecular-weight", std::to_string(rng->Between(9000, 90000)));
  }
  em->Close("summary");
  em->Leaf("sequence", FillerWords(rng, 10));
  if (rng->Percent(50)) {
    em->Open("annotation");
    for (int f = 0; f < 3; ++f) {
      em->Open("feature");
      em->Leaf("feature-type", rng->Percent(50) ? "binding site" : "domain");
      em->Leaf("description", FillerWords(rng, 3));
      em->Leaf("seq-spec", std::to_string(rng->Between(1, 100)));
      if (rng->Percent(30)) em->Leaf("status", "experimental");
      if (rng->Percent(20)) em->Leaf("label", FillerWords(rng, 1));
      if (rng->Percent(15)) {
        em->Open("region");
        em->Leaf("site", std::to_string(rng->Between(1, 80)));
        em->Leaf("modification", FillerWords(rng, 1));
        em->Close("region");
      }
      em->Close("feature");
    }
    if (rng->Percent(20)) em->Leaf("product", FillerWords(rng, 2));
    if (rng->Percent(15)) em->Leaf("standard-name", FillerWords(rng, 2));
    em->Close("annotation");
  }
  em->Close("ProteinEntry");
}

}  // namespace

void GenerateProtein(const GenOptions& options, SaxHandler* handler) {
  Emitter em(handler);
  handler->OnStartDocument();
  em.Open("ProteinDatabase");
  for (int copy = 0; copy < options.replicate; ++copy) {
    Rng rng(options.seed);
    // ~1300 entries at scale 1 give ~113k nodes, matching figure 12.
    int entries = 1300 * options.scale;
    for (int e = 0; e < entries; ++e) {
      EmitProteinEntry(&em, &rng);
    }
  }
  em.Close("ProteinDatabase");
  handler->OnEndDocument();
}

}  // namespace blas

#include "gen/generator.h"

#include "gen/gen_util.h"

namespace blas {

namespace {

constexpr const char* kRegions[] = {"africa",   "asia",    "australia",
                                    "europe",   "namerica", "samerica"};

/// Recursive description content: plain text or parlist/listitem nesting
/// (XMark's recursive DTD; drives the depth-12 characteristic).
void EmitDescription(Emitter* em, Rng* rng, int depth_budget) {
  em->Open("description");
  if (depth_budget <= 0 || rng->Percent(55)) {
    em->Leaf("text", FillerWords(rng, 8));
  } else {
    // parlist -> listitem -> (text | parlist ...)
    int levels = static_cast<int>(rng->Between(1, depth_budget));
    int opened = 0;
    for (int l = 0; l < levels; ++l) {
      em->Open("parlist");
      em->Open("listitem");
      ++opened;
      if (l + 1 < levels) continue;
      em->Leaf("text", FillerWords(rng, 5));
    }
    for (int l = 0; l < opened; ++l) {
      em->Close("listitem");
      em->Close("parlist");
    }
  }
  em->Close("description");
}

void EmitItem(Emitter* em, Rng* rng, int id) {
  std::vector<XmlAttribute> attrs = {
      {"id", "item" + std::to_string(id)}};
  if (rng->Percent(10)) attrs.push_back({"featured", "yes"});
  em->Open("item", attrs);
  em->Leaf("location", "United States");
  em->Leaf("quantity", std::to_string(rng->Between(1, 9)));
  em->Leaf("name", FillerWords(rng, 2));
  em->Leaf("payment", "Creditcard");
  EmitDescription(em, rng, /*depth_budget=*/3);
  if (rng->Percent(70)) em->Leaf("shipping", "Will ship internationally");
  int cats = static_cast<int>(rng->Between(1, 3));
  for (int c = 0; c < cats; ++c) {
    em->Open("incategory",
             {{"category", "category" + std::to_string(rng->Below(40))}});
    em->Close("incategory");
  }
  em->Open("mailbox");
  int mails = static_cast<int>(rng->Between(0, 2));
  for (int m = 0; m < mails; ++m) {
    em->Open("mail");
    em->Leaf("from", PersonName(rng->Next()));
    em->Leaf("to", PersonName(rng->Next()));
    em->Leaf("date", "0" + std::to_string(rng->Between(1, 9)) + "/" +
                         std::to_string(rng->Between(1998, 2001)));
    em->Leaf("text", FillerWords(rng, 6));
    em->Close("mail");
  }
  em->Close("mailbox");
  em->Close("item");
}

void EmitPerson(Emitter* em, Rng* rng, int id) {
  em->Open("person", {{"id", "person" + std::to_string(id)}});
  em->Leaf("name", PersonName(rng->Next()));
  em->Leaf("emailaddress", "mailto:user" + std::to_string(id) + "@acm.org");
  if (rng->Percent(40)) em->Leaf("phone", "+1 (" + std::to_string(rng->Between(200, 999)) + ") 5550199");
  if (rng->Percent(50)) {
    em->Open("address");
    em->Leaf("street", std::to_string(rng->Between(1, 99)) + " Walnut St");
    em->Leaf("city", "Philadelphia");
    em->Leaf("country", "United States");
    em->Leaf("zipcode", std::to_string(rng->Between(10000, 99999)));
    em->Close("address");
  }
  if (rng->Percent(30)) em->Leaf("homepage", "http://example.org/~u" + std::to_string(id));
  if (rng->Percent(25)) em->Leaf("creditcard", "1234 5678 9012 3456");
  if (rng->Percent(60)) {
    em->Open("profile", {{"income", std::to_string(rng->Between(20000, 90000))}});
    int interests = static_cast<int>(rng->Between(0, 3));
    for (int i = 0; i < interests; ++i) {
      em->Open("interest",
               {{"category", "category" + std::to_string(rng->Below(40))}});
      em->Close("interest");
    }
    if (rng->Percent(50)) em->Leaf("education", "Graduate School");
    if (rng->Percent(50)) em->Leaf("gender", rng->Percent(50) ? "male" : "female");
    em->Leaf("business", rng->Percent(50) ? "Yes" : "No");
    if (rng->Percent(50)) em->Leaf("age", std::to_string(rng->Between(18, 80)));
    em->Close("profile");
  }
  if (rng->Percent(30)) {
    em->Open("watches");
    int watches = static_cast<int>(rng->Between(1, 3));
    for (int w = 0; w < watches; ++w) {
      em->Open("watch",
               {{"open_auction", "open_auction" + std::to_string(rng->Below(200))}});
      em->Close("watch");
    }
    em->Close("watches");
  }
  em->Close("person");
}

void EmitOpenAuction(Emitter* em, Rng* rng, int id) {
  em->Open("open_auction", {{"id", "open_auction" + std::to_string(id)}});
  em->Leaf("initial", std::to_string(rng->Between(1, 300)) + ".00");
  if (rng->Percent(40)) em->Leaf("reserve", std::to_string(rng->Between(300, 600)) + ".00");
  int bidders = static_cast<int>(rng->Between(0, 4));
  for (int b = 0; b < bidders; ++b) {
    em->Open("bidder");
    em->Leaf("date", "0" + std::to_string(rng->Between(1, 9)) + "/2001");
    em->Leaf("time", std::to_string(rng->Between(10, 23)) + ":30:00");
    em->Open("personref",
             {{"person", "person" + std::to_string(rng->Below(300))}});
    em->Close("personref");
    em->Leaf("increase", std::to_string(rng->Between(1, 50)) + ".00");
    em->Close("bidder");
  }
  em->Leaf("current", std::to_string(rng->Between(10, 900)) + ".00");
  if (rng->Percent(30)) em->Leaf("privacy", "Yes");
  em->Open("itemref", {{"item", "item" + std::to_string(rng->Below(600))}});
  em->Close("itemref");
  em->Open("seller", {{"person", "person" + std::to_string(rng->Below(300))}});
  em->Close("seller");
  em->Open("annotation");
  em->Open("author", {{"person", "person" + std::to_string(rng->Below(300))}});
  em->Close("author");
  EmitDescription(em, rng, /*depth_budget=*/2);
  em->Leaf("happiness", std::to_string(rng->Between(1, 10)));
  em->Close("annotation");
  em->Leaf("quantity", std::to_string(rng->Between(1, 5)));
  em->Leaf("type", rng->Percent(50) ? "Regular" : "Featured");
  em->Open("interval");
  em->Leaf("start", "01/01/2001");
  em->Leaf("end", "12/31/2001");
  em->Close("interval");
  em->Close("open_auction");
}

void EmitClosedAuction(Emitter* em, Rng* rng) {
  em->Open("closed_auction");
  em->Open("seller", {{"person", "person" + std::to_string(rng->Below(300))}});
  em->Close("seller");
  em->Open("buyer", {{"person", "person" + std::to_string(rng->Below(300))}});
  em->Close("buyer");
  em->Open("itemref", {{"item", "item" + std::to_string(rng->Below(600))}});
  em->Close("itemref");
  em->Leaf("price", std::to_string(rng->Between(10, 900)) + ".00");
  em->Leaf("date", "0" + std::to_string(rng->Between(1, 9)) + "/2001");
  em->Leaf("quantity", std::to_string(rng->Between(1, 5)));
  em->Leaf("type", rng->Percent(50) ? "Regular" : "Featured");
  if (rng->Percent(80)) {
    em->Open("annotation");
    em->Open("author", {{"person", "person" + std::to_string(rng->Below(300))}});
    em->Close("author");
    EmitDescription(em, rng, /*depth_budget=*/2);
    em->Leaf("happiness", std::to_string(rng->Between(1, 10)));
    em->Close("annotation");
  }
  em->Close("closed_auction");
}

void EmitBody(Emitter* em, Rng* rng, int scale) {
  em->Open("regions");
  for (const char* region : kRegions) {
    em->Open(region);
    // ~300 items per region at scale 1 lands near figure 12's 62k nodes.
    int items = 300 * scale;
    for (int i = 0; i < items; ++i) EmitItem(em, rng, i);
    em->Close(region);
  }
  em->Close("regions");

  em->Open("categories");
  for (int c = 0; c < 30 * scale; ++c) {
    em->Open("category", {{"id", "category" + std::to_string(c)}});
    em->Leaf("name", FillerWords(rng, 1));
    EmitDescription(em, rng, /*depth_budget=*/2);
    em->Close("category");
  }
  em->Close("categories");

  em->Open("catgraph");
  for (int e = 0; e < 30 * scale; ++e) {
    em->Open("edge", {{"from", "category" + std::to_string(rng->Below(40))},
                      {"to", "category" + std::to_string(rng->Below(40))}});
    em->Close("edge");
  }
  em->Close("catgraph");

  em->Open("people");
  for (int p = 0; p < 700 * scale; ++p) EmitPerson(em, rng, p);
  em->Close("people");

  em->Open("open_auctions");
  for (int a = 0; a < 300 * scale; ++a) EmitOpenAuction(em, rng, a);
  em->Close("open_auctions");

  em->Open("closed_auctions");
  for (int a = 0; a < 250 * scale; ++a) EmitClosedAuction(em, rng);
  em->Close("closed_auctions");
}

}  // namespace

void GenerateAuction(const GenOptions& options, SaxHandler* handler) {
  Emitter em(handler);
  handler->OnStartDocument();
  em.Open("site");
  for (int copy = 0; copy < options.replicate; ++copy) {
    Rng rng(options.seed);
    EmitBody(&em, &rng, options.scale);
  }
  em.Close("site");
  handler->OnEndDocument();
}

void GenerateRandomDoc(uint64_t seed, int approx_nodes, int num_tags,
                       int max_depth, int num_values, SaxHandler* handler) {
  Rng rng(seed);
  Emitter em(handler);
  int budget = approx_nodes;

  auto tag_name = [&](int t) { return "t" + std::to_string(t); };
  auto value = [&](uint64_t v) {
    return "v" + std::to_string(v % static_cast<uint64_t>(num_values));
  };

  // Recursive random subtree emission.
  auto emit = [&](auto&& self, int depth) -> void {
    std::string tag = tag_name(static_cast<int>(rng.Below(num_tags)));
    --budget;
    std::vector<XmlAttribute> attrs;
    if (depth < max_depth && rng.Percent(15)) {
      attrs.push_back({"a" + std::to_string(rng.Below(3)),
                       value(rng.Next())});
      --budget;
    }
    em.Open(tag, attrs);
    if (rng.Percent(45)) em.Text(value(rng.Next()));
    while (depth < max_depth && budget > 0 && rng.Percent(60)) {
      self(self, depth + 1);
    }
    if (rng.Percent(10)) em.Text(value(rng.Next()));  // mixed content
    em.Close(tag);
  };

  handler->OnStartDocument();
  // Fixed root so replays and multi-branch structure are stable.
  em.Open("root");
  --budget;
  while (budget > 0) emit(emit, 2);
  em.Close("root");
  handler->OnEndDocument();
}

}  // namespace blas

#include "gen/gen_util.h"

namespace blas {

namespace {

constexpr const char* kWords[] = {
    "quae",   "ipsa",    "dolor",  "magna",  "tempus", "regna",
    "ferrum", "gloria",  "umbra",  "fortis", "caelum", "mare",
    "ventus", "silva",   "flumen", "ignis",  "aurum",  "vox",
    "lumen",  "nox",     "ordo",   "fatum",  "virtus", "arx",
};

constexpr const char* kNames[] = {
    "Evans, M.J.",  "Daniel, M.",   "Chen, Y.",     "Davidson, S.",
    "Zheng, Y.",    "Bruno, N.",    "Koudas, N.",   "Srivastava, D.",
    "Tannen, V.",   "Tan, W.C.",    "Milo, T.",     "Suciu, D.",
    "Abiteboul, S.", "Widom, J.",   "Naughton, J.", "DeWitt, D.",
};

}  // namespace

std::string FillerWords(Rng* rng, int words) {
  std::string out;
  for (int i = 0; i < words; ++i) {
    if (i > 0) out.push_back(' ');
    out.append(kWords[rng->Below(sizeof(kWords) / sizeof(kWords[0]))]);
  }
  return out;
}

std::string PersonName(uint64_t index) {
  return kNames[index % (sizeof(kNames) / sizeof(kNames[0]))];
}

}  // namespace blas

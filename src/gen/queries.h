#ifndef BLAS_GEN_QUERIES_H_
#define BLAS_GEN_QUERIES_H_

#include <string>
#include <vector>

namespace blas {

/// One benchmark query: paper name + XPath text.
struct BenchQuery {
  std::string name;
  std::string xpath;
  /// True when the query carries value predicates (removed for the twig
  /// engine experiments, section 5.3.1).
  bool has_value_predicate = false;
};

/// The nine non-benchmark queries of figure 10 (QS1-3, QP1-3, QA1-3).
/// 'S' = Shakespeare, 'P' = Protein, 'A' = Auction; type 1 = suffix path,
/// 2 = path with internal descendant axis, 3 = tree query.
std::vector<BenchQuery> Figure10Queries(char dataset);

/// XMark benchmark-query analogues used for figure 15 (Q1, Q2, Q4, Q5, Q6;
/// twig-pattern versions without value predicates, section 5.3.1).
std::vector<BenchQuery> XMarkBenchmarkQueries();

/// Strips value predicates from an XPath text (section 5.3.1 modification
/// for the holistic twig join experiments).
std::string StripValuePredicates(const std::string& xpath);

/// The paper's running-example query Q (figure 2).
std::string PaperExampleQuery();

}  // namespace blas

#endif  // BLAS_GEN_QUERIES_H_

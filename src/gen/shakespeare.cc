#include "gen/generator.h"

#include "gen/gen_util.h"

namespace blas {

namespace {

constexpr const char* kSceneTitles[] = {
    "SCENE I. A hall in the castle.",
    "SCENE II. The palace gardens.",
    "SCENE III. A public place.",  // QS3's predicate value
    "SCENE IV. Before the city gates.",
    "SCENE V. A camp near the battlefield.",
};

void EmitSpeech(Emitter* em, Rng* rng, bool allow_inline_stagedir) {
  em->Open("SPEECH");
  em->Leaf("SPEAKER", PersonName(rng->Next()));
  int lines = static_cast<int>(rng->Between(1, 4));
  for (int l = 0; l < lines; ++l) {
    em->Open("LINE");
    em->Text(FillerWords(rng, 6));
    if (allow_inline_stagedir && rng->Percent(10)) {
      // Graph-DTD feature: STAGEDIR nested inside LINE (depth 7).
      em->Leaf("STAGEDIR", FillerWords(rng, 2));
    }
    em->Close("LINE");
  }
  em->Close("SPEECH");
}

void EmitPlay(Emitter* em, Rng* rng, int scale) {
  em->Open("PLAY");
  em->Leaf("TITLE", "The Tragedy of " + FillerWords(rng, 2));
  em->Leaf("SUBTITLE", FillerWords(rng, 3));

  em->Open("FM");
  for (int i = 0; i < 3; ++i) em->Leaf("P", FillerWords(rng, 8));
  em->Close("FM");

  em->Open("PERSONAE");
  em->Leaf("TITLE", "Dramatis Personae");
  int personae = static_cast<int>(rng->Between(5, 9));
  for (int i = 0; i < personae; ++i) {
    em->Leaf("PERSONA", PersonName(rng->Next()));
  }
  for (int g = 0; g < 2; ++g) {
    em->Open("PGROUP");
    em->Leaf("PERSONA", PersonName(rng->Next()));
    em->Leaf("PERSONA", PersonName(rng->Next()));
    em->Leaf("GRPDESCR", FillerWords(rng, 3));
    em->Close("PGROUP");
  }
  em->Close("PERSONAE");

  if (rng->Percent(25)) {
    em->Open("INDUCT");
    em->Leaf("TITLE", "Induction");
    EmitSpeech(em, rng, /*allow_inline_stagedir=*/false);
    EmitSpeech(em, rng, false);
    em->Close("INDUCT");
  }

  if (rng->Percent(30)) {
    em->Open("PROLOGUE");
    em->Leaf("TITLE", "Prologue");
    EmitSpeech(em, rng, false);
    em->Leaf("STAGEDIR", FillerWords(rng, 2));
    em->Close("PROLOGUE");
  }

  for (int act = 0; act < 5; ++act) {
    em->Open("ACT");
    em->Leaf("TITLE", "ACT " + std::to_string(act + 1));
    int scenes = static_cast<int>(rng->Between(3, 5));
    for (int s = 0; s < scenes; ++s) {
      em->Open("SCENE");
      em->Leaf("TITLE", kSceneTitles[s % 5]);
      if (rng->Percent(40)) em->Leaf("STAGEDIR", FillerWords(rng, 3));
      int speeches = static_cast<int>(rng->Between(6, 10)) * scale;
      for (int sp = 0; sp < speeches; ++sp) {
        EmitSpeech(em, rng, /*allow_inline_stagedir=*/true);
      }
      em->Close("SCENE");
    }
    em->Close("ACT");
  }

  if (rng->Percent(35)) {
    em->Open("EPILOGUE");
    em->Leaf("TITLE", "Epilogue");
    EmitSpeech(em, rng, /*allow_inline_stagedir=*/true);
    for (int l = 0; l < 2; ++l) {
      em->Open("LINE");
      em->Text(FillerWords(rng, 5));
      if (rng->Percent(50)) em->Leaf("STAGEDIR", "Exit");
      em->Close("LINE");
    }
    em->Leaf("STAGEDIR", "Exeunt omnes");
    em->Close("EPILOGUE");
  }
  em->Close("PLAY");
}

}  // namespace

void GenerateShakespeare(const GenOptions& options, SaxHandler* handler) {
  Emitter em(handler);
  handler->OnStartDocument();
  em.Open("PLAYS");
  for (int copy = 0; copy < options.replicate; ++copy) {
    // Identical copies: the paper replicates the data set verbatim.
    Rng rng(options.seed);
    // 37 plays at scale 1 gives ~32k nodes, matching figure 12.
    for (int p = 0; p < 37; ++p) {
      EmitPlay(&em, &rng, options.scale);
    }
  }
  em.Close("PLAYS");
  handler->OnEndDocument();
}

}  // namespace blas

#include "gen/queries.h"

#include "common/result.h"
#include "xpath/ast.h"
#include "xpath/parser.h"

namespace blas {

std::vector<BenchQuery> Figure10Queries(char dataset) {
  switch (dataset) {
    case 'S':
      return {
          {"QS1", "/PLAYS/PLAY/ACT/SCENE/SPEECH/LINE", false},
          {"QS2", "/PLAYS/PLAY/EPILOGUE//LINE/STAGEDIR", false},
          {"QS3",
           "/PLAYS/PLAY/ACT/SCENE[TITLE ='SCENE III. A public place.']"
           "//LINE",
           true},
      };
    case 'P':
      return {
          {"QP1", "/ProteinDatabase/ProteinEntry/protein/name", false},
          {"QP2", "/ProteinDatabase/ProteinEntry//authors/author='Daniel, M.'",
           true},
          {"QP3",
           "/ProteinDatabase/ProteinEntry[reference/refinfo[citation and "
           "year]]/protein/name",
           false},
      };
    case 'A':
      return {
          {"QA1", "//category/description/parlist/listitem", false},
          {"QA2", "/site/regions//item/description", false},
          {"QA3", "/site/regions/asia/item[shipping]/description", false},
      };
    default:
      return {};
  }
}

std::vector<BenchQuery> XMarkBenchmarkQueries() {
  // Twig-pattern analogues of XMark Q1,Q2,Q4,Q5,Q6 (the paper removes
  // value predicates and skips Q3's positional predicate; section 5.3.1).
  return {
      {"Q1", "/site/people/person/name", false},
      {"Q2", "/site/open_auctions/open_auction/bidder/increase", false},
      {"Q4", "/site/closed_auctions/closed_auction[annotation/description]"
             "/date",
       false},
      {"Q5", "/site/closed_auctions/closed_auction/price", false},
      {"Q6", "/site/regions//item", false},
  };
}

std::string StripValuePredicates(const std::string& xpath) {
  Result<Query> parsed = ParseXPath(xpath);
  if (!parsed.ok()) return xpath;

  // Drop every value predicate in the tree, then re-render.
  struct Walker {
    static void Strip(QueryNode* node) {
      node->value.reset();
      for (auto& child : node->children) Strip(child.get());
    }
  };
  Walker::Strip(parsed->root.get());
  return parsed->ToString();
}

std::string PaperExampleQuery() {
  return "/ProteinDatabase/ProteinEntry[protein//superfamily"
         "=\"cytochrome c\"]/reference/refinfo[//author =\"Evans, M.J.\" "
         "and year = \"2001\"]/title";
}

}  // namespace blas

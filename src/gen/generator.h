#ifndef BLAS_GEN_GENERATOR_H_
#define BLAS_GEN_GENERATOR_H_

#include <cstdint>

#include "xml/sax.h"

namespace blas {

/// \brief Parameters of the synthetic dataset generators.
///
/// The paper's corpora (Shakespeare [5], Protein [18], XMark Auction [30])
/// are reproduced by deterministic generators that match the structural
/// characteristics reported in figure 12: tag alphabet, depth, DTD shape
/// (graph / tree / recursive) and, at scale = 1, roughly the node counts.
/// `replicate` repeats the document body under the root, mirroring how the
/// paper scales data for sections 5.3.2-5.3.4 ("repeat the original data
/// set 20 times", 10x-60x).
struct GenOptions {
  uint64_t seed = 42;
  /// Multiplies entity counts within one body (plays / protein entries /
  /// auction items).
  int scale = 1;
  /// Number of identical body copies under the root.
  int replicate = 1;
};

/// Shakespeare-like corpus: 19 tags, depth 7, graph-shaped DTD (TITLE and
/// LINE occur under many parents; LINE may nest STAGEDIR).
void GenerateShakespeare(const GenOptions& options, SaxHandler* handler);

/// Protein-like corpus (Georgetown PIR): ~60 tags, depth 7, tree DTD.
/// Contains the paper's running example values ("cytochrome c",
/// "Evans, M.J.", year 2001) and the QP2 value "Daniel, M.".
void GenerateProtein(const GenOptions& options, SaxHandler* handler);

/// XMark-auction-like corpus: ~77 tags (attributes included), recursive
/// DTD (description/parlist/listitem), depth 12.
void GenerateAuction(const GenOptions& options, SaxHandler* handler);

/// \brief Purely random document for property-based differential tests.
///
/// Emits a deterministic random tree with `approx_nodes` element nodes over
/// the tag alphabet t0..t{num_tags-1}, text values drawn from v0..v{num_values-1},
/// occasional attributes (@a0..@a2) and maximum depth `max_depth`.
void GenerateRandomDoc(uint64_t seed, int approx_nodes, int num_tags,
                       int max_depth, int num_values, SaxHandler* handler);

}  // namespace blas

#endif  // BLAS_GEN_GENERATOR_H_

#ifndef BLAS_SERVICE_THREAD_POOL_H_
#define BLAS_SERVICE_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace blas {

/// \brief Fixed-size worker pool with a bounded submission queue.
///
/// Submit blocks the caller while the queue is full (backpressure instead
/// of unbounded memory); TrySubmit returns false instead. Shutdown drains
/// every task already accepted, then joins the workers; the destructor
/// calls Shutdown. Tasks must not throw.
class ThreadPool {
 public:
  ThreadPool(size_t num_threads, size_t queue_capacity);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `task`, waiting for queue space if necessary. Returns false
  /// (dropping the task) only after Shutdown has begun.
  bool Submit(std::function<void()> task);

  /// Enqueues `task` only if space is free right now; never blocks.
  bool TrySubmit(std::function<void()> task);

  /// Stops accepting work, runs everything already queued, joins workers.
  /// Idempotent.
  void Shutdown();

  /// Blocks until the queue is empty and every worker is idle (or the
  /// pool is shut down). Tasks submitted by still-running tasks are
  /// waited for too — the pool settles before this returns, so tests can
  /// assert post-drain state deterministically instead of sleeping. Only
  /// a snapshot: another thread may submit again right after.
  void WaitIdle();

  size_t thread_count() const { return workers_.size(); }
  size_t queue_capacity() const { return queue_capacity_; }

  /// Tasks accepted but not yet picked up by a worker. A snapshot only —
  /// workers dequeue concurrently — useful for backpressure diagnostics
  /// and for tests that stage a known queue state.
  size_t queue_size() const;

 private:
  void WorkerLoop();

  const size_t queue_capacity_;
  mutable std::mutex mu_;
  std::mutex join_mu_;  // serializes concurrent Shutdown callers
  std::condition_variable work_ready_;
  std::condition_variable space_free_;
  std::condition_variable idle_;
  std::deque<std::function<void()>> queue_;
  size_t active_ = 0;  // workers currently running a task
  bool shutdown_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace blas

#endif  // BLAS_SERVICE_THREAD_POOL_H_

#ifndef BLAS_SERVICE_THREAD_POOL_H_
#define BLAS_SERVICE_THREAD_POOL_H_

#include <cstddef>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "common/thread_annotations.h"

namespace blas {

/// \brief Fixed-size worker pool with a bounded submission queue.
///
/// Submit blocks the caller while the queue is full (backpressure instead
/// of unbounded memory); TrySubmit returns false instead. Shutdown drains
/// every task already accepted, then joins the workers; the destructor
/// calls Shutdown. Tasks must not throw.
class ThreadPool {
 public:
  ThreadPool(size_t num_threads, size_t queue_capacity);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `task`, waiting for queue space if necessary. Returns false
  /// (dropping the task) only after Shutdown has begun.
  bool Submit(std::function<void()> task) BLAS_EXCLUDES(mu_);

  /// Enqueues `task` only if space is free right now; never blocks.
  bool TrySubmit(std::function<void()> task) BLAS_EXCLUDES(mu_);

  /// Stops accepting work, runs everything already queued, joins workers.
  /// Idempotent.
  void Shutdown() BLAS_EXCLUDES(mu_, join_mu_);

  /// Blocks until the queue is empty and every worker is idle (or the
  /// pool is shut down). Tasks submitted by still-running tasks are
  /// waited for too — the pool settles before this returns, so tests can
  /// assert post-drain state deterministically instead of sleeping. Only
  /// a snapshot: another thread may submit again right after.
  void WaitIdle() BLAS_EXCLUDES(mu_);

  size_t thread_count() const { return thread_count_; }
  size_t queue_capacity() const { return queue_capacity_; }

  /// Tasks accepted but not yet picked up by a worker. A snapshot only —
  /// workers dequeue concurrently — useful for backpressure diagnostics
  /// and for tests that stage a known queue state.
  size_t queue_size() const BLAS_EXCLUDES(mu_);

 private:
  void WorkerLoop() BLAS_EXCLUDES(mu_);
  /// 0 -> hardware_concurrency() (itself 0-guarded to 1).
  static size_t NormalizeThreadCount(size_t num_threads);

  const size_t queue_capacity_;
  /// Fixed at construction (workers_.size() may only be read under
  /// join_mu_, so the count is mirrored here for lock-free accessors).
  const size_t thread_count_;
  mutable Mutex mu_;
  /// Serializes concurrent Shutdown callers (thread::join is not
  /// concurrently callable on the same thread object). Never nested with
  /// mu_: Shutdown flips the flag under mu_, releases, then joins.
  Mutex join_mu_;
  CondVar work_ready_;
  CondVar space_free_;
  CondVar idle_;
  std::deque<std::function<void()>> queue_ BLAS_GUARDED_BY(mu_);
  size_t active_ BLAS_GUARDED_BY(mu_) = 0;  // workers currently running a task
  bool shutdown_ BLAS_GUARDED_BY(mu_) = false;
  std::vector<std::thread> workers_ BLAS_GUARDED_BY(join_mu_);
};

}  // namespace blas

#endif  // BLAS_SERVICE_THREAD_POOL_H_

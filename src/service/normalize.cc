#include "service/normalize.h"

#include <cctype>

namespace blas {

namespace {

bool IsSpace(char c) {
  return std::isspace(static_cast<unsigned char>(c)) != 0;
}

/// Characters that can appear inside a name test or the "and" keyword.
/// A space between two of these is a token separator and must survive
/// (collapsed to one byte); any other space is decoration.
bool IsNameChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_' ||
         c == '-' || c == '.' || c == ':';
}

/// Appends the normalized form of `text` to `out`.
void NormalizeInto(std::string_view text, std::string* out) {
  char quote = 0;
  size_t i = 0;
  while (i < text.size()) {
    char c = text[i];
    if (quote != 0) {
      out->push_back(c);
      if (c == quote) quote = 0;
      ++i;
      continue;
    }
    if (c == '"' || c == '\'') {
      quote = c;
      out->push_back(c);
      ++i;
      continue;
    }
    if (IsSpace(c)) {
      size_t j = i;
      while (j < text.size() && IsSpace(text[j])) ++j;
      bool separator = !out->empty() && IsNameChar(out->back()) &&
                       j < text.size() && IsNameChar(text[j]);
      if (separator) out->push_back(' ');
      i = j;
      continue;
    }
    out->push_back(c);
    ++i;
  }
}

}  // namespace

std::string NormalizeXPath(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  NormalizeInto(text, &out);
  return out;
}

std::string PlanCacheKey(std::string_view xpath, Translator translator,
                         bool optimize_join_order) {
  std::string key;
  key.reserve(xpath.size() + 4);
  NormalizeInto(xpath, &key);
  key.push_back('\x1f');
  // One byte per knob keeps the key compact and collision-free.
  key.push_back(static_cast<char>('0' + static_cast<int>(translator)));
  key.push_back(optimize_join_order ? '1' : '0');
  return key;
}

}  // namespace blas

#include "service/plan_cache.h"

#include <utility>

namespace blas {

PlanCache::PlanCache(size_t capacity) : capacity_(capacity) {}

std::shared_ptr<const CachedPlan> PlanCache::Get(const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  ++stats_.hits;
  lru_.splice(lru_.begin(), lru_, it->second);
  return it->second->plan;
}

void PlanCache::Put(const std::string& key,
                    std::shared_ptr<const CachedPlan> plan) {
  if (capacity_ == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->plan = std::move(plan);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.push_front(Entry{key, std::move(plan)});
  index_[key] = lru_.begin();
  ++stats_.insertions;
  if (lru_.size() > capacity_) {
    index_.erase(lru_.back().key);
    lru_.pop_back();
    ++stats_.evictions;
  }
}

PlanCache::Stats PlanCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

size_t PlanCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();
}

void PlanCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  index_.clear();
}

std::vector<std::string> PlanCache::KeysMruToLru() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> keys;
  keys.reserve(lru_.size());
  for (const Entry& entry : lru_) keys.push_back(entry.key);
  return keys;
}

}  // namespace blas

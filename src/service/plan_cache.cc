#include "service/plan_cache.h"

#include <utility>

namespace blas {

std::shared_ptr<const CachedPlan> CachedCollectionPlan::ForDoc(
    const std::string& doc, uint64_t epoch) const {
  MutexLock lock(mu_);
  auto it = per_doc_.find(doc);
  if (it == per_doc_.end() || it->second.epoch != epoch) {
    // Not translated for this generation. The mismatched entry (if any)
    // is left in place: a cursor still draining an older pinned epoch
    // may look it up again, and evicting here would make alternating
    // old/new readers thrash the slot with retranslations.
    return nullptr;
  }
  return it->second.plan;
}

void CachedCollectionPlan::PutDoc(
    const std::string& doc, uint64_t epoch,
    std::shared_ptr<const CachedPlan> plan) const {
  MutexLock lock(mu_);
  auto [it, inserted] = per_doc_.try_emplace(doc);
  if (inserted || epoch > it->second.epoch) {
    it->second = TaggedPlan{epoch, std::move(plan)};
  }
  // Same-epoch racers: first writer wins (the plans are identical).
  // Older epochs never displace a newer tag — a straggling cursor on a
  // superseded snapshot pays its own translations instead of evicting
  // the plan every current reader uses.
}

void CachedCollectionPlan::InvalidateDocument(const std::string& doc) const {
  MutexLock lock(mu_);
  per_doc_.erase(doc);
}

}  // namespace blas

#include "service/plan_cache.h"

#include <utility>

namespace blas {

std::shared_ptr<const CachedPlan> CachedCollectionPlan::ForDoc(
    const std::string& doc) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = per_doc_.find(doc);
  return it == per_doc_.end() ? nullptr : it->second;
}

void CachedCollectionPlan::PutDoc(
    const std::string& doc, std::shared_ptr<const CachedPlan> plan) const {
  std::lock_guard<std::mutex> lock(mu_);
  per_doc_.try_emplace(doc, std::move(plan));
}

}  // namespace blas

#ifndef BLAS_SERVICE_PLAN_CACHE_H_
#define BLAS_SERVICE_PLAN_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "blas/blas.h"
#include "exec/plan.h"

namespace blas {

/// A translated plan plus the plan-derived verdicts whose computation
/// walks the path summary: the cost-based engine choice for Engine::kAuto
/// and the bounded-cursor streaming-gate inputs. Caching them alongside
/// the plan keeps warm queries free of per-request summary walks.
/// Immutable once cached.
struct CachedPlan {
  ExecPlan plan;
  Engine auto_engine = Engine::kRelational;
  StreamPlanInfo stream_info;
};

/// \brief Thread-safe LRU cache of translated query plans.
///
/// Keyed by PlanCacheKey (normalized XPath + translator + optimizer
/// knobs); a hit skips parsing, decomposition, translation and join-order
/// optimization entirely. Entries are immutable and handed out as
/// shared_ptr<const CachedPlan>, so an entry evicted while a query is
/// still executing stays alive until that query drops its reference.
class PlanCache {
 public:
  /// `capacity` == 0 disables the cache (every Get misses, Put is a
  /// no-op) — the service uses that for its cache-bypass mode.
  explicit PlanCache(size_t capacity = 256);

  /// Returns the cached plan and promotes it to most-recently-used, or
  /// nullptr on miss. Counts one hit or one miss.
  std::shared_ptr<const CachedPlan> Get(const std::string& key);

  /// Inserts or refreshes `plan` under `key`, evicting the
  /// least-recently-used entry when over capacity.
  void Put(const std::string& key, std::shared_ptr<const CachedPlan> plan);

  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t insertions = 0;
    uint64_t evictions = 0;
  };
  Stats stats() const;

  size_t size() const;
  size_t capacity() const { return capacity_; }

  /// Drops all entries (stats are kept).
  void Clear();

  /// Keys in recency order, most recent first (tests of eviction order).
  std::vector<std::string> KeysMruToLru() const;

 private:
  struct Entry {
    std::string key;
    std::shared_ptr<const CachedPlan> plan;
  };

  const size_t capacity_;
  mutable std::mutex mu_;
  std::list<Entry> lru_;  // front = most recent
  std::unordered_map<std::string, std::list<Entry>::iterator> index_;
  Stats stats_;
};

}  // namespace blas

#endif  // BLAS_SERVICE_PLAN_CACHE_H_

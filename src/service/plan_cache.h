#ifndef BLAS_SERVICE_PLAN_CACHE_H_
#define BLAS_SERVICE_PLAN_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "blas/blas.h"
#include "common/thread_annotations.h"
#include "exec/plan.h"
#include "xpath/ast.h"

namespace blas {

/// A translated plan plus the plan-derived verdicts whose computation
/// walks the path summary: the cost-based engine choice for Engine::kAuto
/// and the bounded-cursor streaming-gate inputs. Caching them alongside
/// the plan keeps warm queries free of per-request summary walks.
/// Immutable once cached.
struct CachedPlan {
  ExecPlan plan;
  Engine auto_engine = Engine::kRelational;
  StreamPlanInfo stream_info;
};

/// \brief Cache entry for a collection-wide query: the query is parsed
/// once, and the per-document translated plans (codecs legitimately
/// differ between documents, so each document needs its own plan) fill in
/// lazily as scatter workers first touch each document. A hot collection
/// query therefore pays one parse total and N per-document translations
/// total, after which every request is pure cache hits.
///
/// Every per-document plan is tagged with the *epoch* of the document
/// generation it was translated against (a live collection bumps a
/// document's epoch on every replace; static collections use epoch 0).
/// A lookup whose epoch differs from the tag misses — a replaced document
/// can therefore never serve a plan translated against its previous
/// incarnation, whose tag ids, codec widths and path summary may all
/// differ.
///
/// The per-document map is internally synchronized: scatter workers for
/// different documents insert concurrently through the const handle the
/// cache gives out.
class CachedCollectionPlan {
 public:
  explicit CachedCollectionPlan(Query query) : query_(std::move(query)) {}

  const Query& query() const { return query_; }

  /// The cached plan for `doc` at `epoch`, or nullptr when the slot is
  /// empty or holds a different generation's plan (the entry stays —
  /// see PutDoc).
  std::shared_ptr<const CachedPlan> ForDoc(const std::string& doc,
                                           uint64_t epoch) const;

  /// Publishes `plan` for `doc` at `epoch`. First writer wins among
  /// same-epoch racers (the plans are identical); a newer epoch replaces
  /// an older tag; an older epoch never displaces a newer one (cursors
  /// still draining a superseded snapshot must not thrash the slot the
  /// current epoch's readers hit).
  void PutDoc(const std::string& doc, uint64_t epoch,
              std::shared_ptr<const CachedPlan> plan) const;

  /// Drops the cached plan for `doc` (any epoch). Used when a document is
  /// removed or replaced, so the entry's memory is reclaimed eagerly
  /// instead of waiting for the epoch tag to miss.
  void InvalidateDocument(const std::string& doc) const;

 private:
  struct TaggedPlan {
    uint64_t epoch = 0;
    std::shared_ptr<const CachedPlan> plan;
  };

  const Query query_;
  mutable Mutex mu_;
  mutable std::unordered_map<std::string, TaggedPlan> per_doc_
      BLAS_GUARDED_BY(mu_);
};

namespace internal {

/// \brief Thread-safe LRU cache core shared by the single-document and
/// collection plan caches. Values are handed out as shared_ptr<const V>,
/// so an entry evicted while a query still uses it stays alive until the
/// query drops its reference.
template <typename V>
class LruCache {
 public:
  /// `capacity` == 0 disables the cache (every Get misses, Put is a
  /// no-op) — the service uses that for its cache-bypass mode.
  explicit LruCache(size_t capacity) : capacity_(capacity) {}

  /// Returns the cached value and promotes it to most-recently-used, or
  /// nullptr on miss. Counts one hit or one miss.
  std::shared_ptr<const V> Get(const std::string& key) {
    MutexLock lock(mu_);
    auto it = index_.find(key);
    if (it == index_.end()) {
      ++stats_.misses;
      return nullptr;
    }
    ++stats_.hits;
    lru_.splice(lru_.begin(), lru_, it->second);
    return it->second->value;
  }

  /// Inserts or refreshes `value` under `key`, evicting the
  /// least-recently-used entry when over capacity.
  void Put(const std::string& key, std::shared_ptr<const V> value) {
    if (capacity_ == 0) return;
    MutexLock lock(mu_);
    auto it = index_.find(key);
    if (it != index_.end()) {
      it->second->value = std::move(value);
      lru_.splice(lru_.begin(), lru_, it->second);
      return;
    }
    lru_.push_front(Entry{key, std::move(value)});
    index_[key] = lru_.begin();
    ++stats_.insertions;
    if (lru_.size() > capacity_) {
      index_.erase(lru_.back().key);
      lru_.pop_back();
      ++stats_.evictions;
    }
  }

  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t insertions = 0;
    uint64_t evictions = 0;
  };
  Stats stats() const {
    MutexLock lock(mu_);
    return stats_;
  }

  size_t size() const {
    MutexLock lock(mu_);
    return lru_.size();
  }
  size_t capacity() const { return capacity_; }

  /// Drops all entries (stats are kept).
  void Clear() {
    MutexLock lock(mu_);
    lru_.clear();
    index_.clear();
  }

  /// Applies `fn` to every cached value under the cache lock (recency
  /// order). For sweep-style maintenance — keep `fn` cheap.
  template <typename Fn>
  void ForEachValue(Fn fn) const {
    MutexLock lock(mu_);
    for (const Entry& entry : lru_) fn(*entry.value);
  }

  /// Keys in recency order, most recent first (tests of eviction order).
  std::vector<std::string> KeysMruToLru() const {
    MutexLock lock(mu_);
    std::vector<std::string> keys;
    keys.reserve(lru_.size());
    for (const Entry& entry : lru_) keys.push_back(entry.key);
    return keys;
  }

 private:
  struct Entry {
    std::string key;
    std::shared_ptr<const V> value;
  };

  const size_t capacity_;
  mutable Mutex mu_;
  std::list<Entry> lru_ BLAS_GUARDED_BY(mu_);  // front = most recent
  std::unordered_map<std::string, typename std::list<Entry>::iterator> index_
      BLAS_GUARDED_BY(mu_);
  Stats stats_ BLAS_GUARDED_BY(mu_);
};

}  // namespace internal

/// \brief Thread-safe LRU cache of translated query plans.
///
/// Keyed by PlanCacheKey (normalized XPath + translator + optimizer
/// knobs); a hit skips parsing, decomposition, translation and join-order
/// optimization entirely.
class PlanCache : public internal::LruCache<CachedPlan> {
 public:
  explicit PlanCache(size_t capacity = 256) : LruCache(capacity) {}
};

/// \brief Thread-safe LRU cache of collection query entries (one parsed
/// query plus lazily filled per-document plans). Same keying as
/// PlanCache.
class CollectionPlanCache : public internal::LruCache<CachedCollectionPlan> {
 public:
  explicit CollectionPlanCache(size_t capacity = 256) : LruCache(capacity) {}

  /// Drops `doc`'s per-document plan from every cached entry (document
  /// replaced or removed). The parsed queries and other documents' plans
  /// survive — only the invalidated document pays retranslation.
  void InvalidateDocument(const std::string& doc) {
    ForEachValue([&doc](const CachedCollectionPlan& entry) {
      entry.InvalidateDocument(doc);
    });
  }
};

}  // namespace blas

#endif  // BLAS_SERVICE_PLAN_CACHE_H_

#ifndef BLAS_SERVICE_NORMALIZE_H_
#define BLAS_SERVICE_NORMALIZE_H_

#include <string>
#include <string_view>

#include "translate/decomposition.h"

namespace blas {

/// \brief Whitespace-insensitive lexical normalization of XPath text.
///
/// Produces identical strings for queries that differ only in whitespace
/// outside quoted literals, without parsing: whitespace runs collapse to a
/// single space when both neighbours are name characters (so "a and b"
/// keeps its separators) and disappear otherwise (" / site // item " ->
/// "/site//item"). Quoted literals are preserved byte for byte. Used as
/// the plan-cache key so "  /a/b " and "/a/b" share one cached plan; it
/// never changes query semantics because the parser already skips the
/// removed whitespace.
std::string NormalizeXPath(std::string_view text);

/// Plan-cache key: normalized text plus every knob that changes the
/// translated plan (translator flavor, join-order optimization).
/// Normalizes `xpath` itself in the same pass (idempotent, so already-
/// normalized text is fine) — one allocation on the cache-hit hot path.
std::string PlanCacheKey(std::string_view xpath, Translator translator,
                         bool optimize_join_order);

}  // namespace blas

#endif  // BLAS_SERVICE_NORMALIZE_H_

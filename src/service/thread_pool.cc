#include "service/thread_pool.h"

#include <utility>

namespace blas {

ThreadPool::ThreadPool(size_t num_threads, size_t queue_capacity)
    : queue_capacity_(queue_capacity == 0 ? 1 : queue_capacity) {
  if (num_threads == 0) {
    num_threads = std::thread::hardware_concurrency();
    if (num_threads == 0) num_threads = 1;
  }
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

bool ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    space_free_.wait(lock, [this] {
      return shutdown_ || queue_.size() < queue_capacity_;
    });
    if (shutdown_) return false;
    queue_.push_back(std::move(task));
  }
  work_ready_.notify_one();
  return true;
}

bool ThreadPool::TrySubmit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_ || queue_.size() >= queue_capacity_) return false;
    queue_.push_back(std::move(task));
  }
  work_ready_.notify_one();
  return true;
}

size_t ThreadPool::queue_size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

void ThreadPool::WaitIdle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_.wait(lock,
             [this] { return shutdown_ || (queue_.empty() && active_ == 0); });
}

void ThreadPool::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_ready_.notify_all();
  space_free_.notify_all();
  idle_.notify_all();
  std::lock_guard<std::mutex> join_lock(join_mu_);
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_ready_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown with a drained queue
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    space_free_.notify_one();
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_.notify_all();
    }
  }
}

}  // namespace blas

#include "service/thread_pool.h"

#include <utility>

namespace blas {

size_t ThreadPool::NormalizeThreadCount(size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::thread::hardware_concurrency();
    if (num_threads == 0) num_threads = 1;
  }
  return num_threads;
}

ThreadPool::ThreadPool(size_t num_threads, size_t queue_capacity)
    : queue_capacity_(queue_capacity == 0 ? 1 : queue_capacity),
      thread_count_(NormalizeThreadCount(num_threads)) {
  MutexLock join_lock(join_mu_);
  workers_.reserve(thread_count_);
  for (size_t i = 0; i < thread_count_; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

bool ThreadPool::Submit(std::function<void()> task) {
  {
    MutexLock lock(mu_);
    while (!shutdown_ && queue_.size() >= queue_capacity_) {
      space_free_.Wait(lock);
    }
    if (shutdown_) return false;
    queue_.push_back(std::move(task));
  }
  work_ready_.NotifyOne();
  return true;
}

bool ThreadPool::TrySubmit(std::function<void()> task) {
  {
    MutexLock lock(mu_);
    if (shutdown_ || queue_.size() >= queue_capacity_) return false;
    queue_.push_back(std::move(task));
  }
  work_ready_.NotifyOne();
  return true;
}

size_t ThreadPool::queue_size() const {
  MutexLock lock(mu_);
  return queue_.size();
}

void ThreadPool::WaitIdle() {
  MutexLock lock(mu_);
  while (!shutdown_ && !(queue_.empty() && active_ == 0)) {
    idle_.Wait(lock);
  }
}

void ThreadPool::Shutdown() {
  {
    MutexLock lock(mu_);
    shutdown_ = true;
  }
  work_ready_.NotifyAll();
  space_free_.NotifyAll();
  idle_.NotifyAll();
  MutexLock join_lock(join_mu_);
  for (std::thread& worker : workers_) {
    // join_mu_ exists precisely to serialize these joins; no other code
    // path ever takes it, so blocking here cannot stall anything else.
    // blas-analyze: allow(blocking-under-lock) -- join_mu_ is join-only
    if (worker.joinable()) worker.join();
  }
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mu_);
      while (!shutdown_ && queue_.empty()) work_ready_.Wait(lock);
      if (queue_.empty()) return;  // shutdown with a drained queue
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    space_free_.NotifyOne();
    task();
    {
      MutexLock lock(mu_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_.NotifyAll();
    }
  }
}

}  // namespace blas

#include "service/query_service.h"

#include <utility>

#include "exec/optimizer.h"
#include "service/normalize.h"

namespace blas {

QueryService::QueryService(const BlasSystem* system,
                           const ServiceOptions& options)
    : system_(system),
      plan_cache_(options.plan_cache_capacity),
      pool_(options.worker_threads, options.queue_capacity) {}

QueryService::QueryService(std::shared_ptr<const BlasSystem> system,
                           const ServiceOptions& options)
    : owned_system_(std::move(system)),
      system_(owned_system_.get()),
      plan_cache_(options.plan_cache_capacity),
      pool_(options.worker_threads, options.queue_capacity) {}

Result<std::unique_ptr<QueryService>> QueryService::FromXml(
    std::string_view xml, const BlasOptions& blas_options,
    const ServiceOptions& options) {
  BLAS_ASSIGN_OR_RETURN(BlasSystem sys, BlasSystem::FromXml(xml, blas_options));
  auto shared = std::make_shared<const BlasSystem>(std::move(sys));
  return std::make_unique<QueryService>(std::move(shared), options);
}

QueryService::~QueryService() { Shutdown(); }

void QueryService::Shutdown() { pool_.Shutdown(); }

std::future<Result<QueryResult>> QueryService::Submit(QueryRequest request) {
  submitted_.fetch_add(1, std::memory_order_relaxed);
  auto task = std::make_shared<std::packaged_task<Result<QueryResult>()>>(
      [this, request = std::move(request)]() { return Run(request); });
  std::future<Result<QueryResult>> future = task->get_future();
  if (!pool_.Submit([task] { (*task)(); })) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    std::promise<Result<QueryResult>> refused;
    refused.set_value(Status::Unsupported("service is shut down"));
    return refused.get_future();
  }
  return future;
}

std::vector<std::future<Result<QueryResult>>> QueryService::SubmitBatch(
    std::vector<QueryRequest> requests) {
  std::vector<std::future<Result<QueryResult>>> futures;
  futures.reserve(requests.size());
  for (QueryRequest& request : requests) {
    futures.push_back(Submit(std::move(request)));
  }
  return futures;
}

Result<QueryResult> QueryService::Execute(const QueryRequest& request) {
  submitted_.fetch_add(1, std::memory_order_relaxed);
  return Run(request);
}

Result<QueryResult> QueryService::Run(const QueryRequest& request) {
  std::shared_ptr<const CachedPlan> plan;
  std::string key;
  const bool use_cache =
      !request.bypass_plan_cache && plan_cache_.capacity() > 0;
  if (use_cache) {
    key = PlanCacheKey(request.xpath, request.translator,
                       request.exec.optimize_join_order);
    plan = plan_cache_.Get(key);
  }
  if (plan == nullptr) {
    Result<ExecPlan> planned = system_->Plan(request.xpath, request.translator);
    if (!planned.ok()) {
      failed_.fetch_add(1, std::memory_order_relaxed);
      return std::move(planned).status();
    }
    CachedPlan fresh;
    fresh.plan = std::move(planned).value();
    CostModel model(&system_->summary(), &system_->dict());
    if (request.exec.optimize_join_order) {
      fresh.plan = OptimizeJoinOrder(fresh.plan, model);
    }
    if (use_cache || request.engine == Engine::kAuto) {
      // Skippable when the engine is pinned and the plan won't be cached
      // (cardinality estimation walks the path summary per part).
      fresh.auto_engine = ChooseEngine(fresh.plan, model);
    }
    plan = std::make_shared<const CachedPlan>(std::move(fresh));
    if (use_cache) plan_cache_.Put(key, plan);
  }

  Engine engine =
      request.engine == Engine::kAuto ? plan->auto_engine : request.engine;
  Result<QueryResult> result = system_->ExecutePlan(plan->plan, engine);
  if (!result.ok()) {
    failed_.fetch_add(1, std::memory_order_relaxed);
    return result;
  }

  completed_.fetch_add(1, std::memory_order_relaxed);
  const ExecStats& stats = result->stats;
  elements_.fetch_add(stats.elements, std::memory_order_relaxed);
  page_fetches_.fetch_add(stats.page_fetches, std::memory_order_relaxed);
  page_misses_.fetch_add(stats.page_misses, std::memory_order_relaxed);
  d_joins_.fetch_add(static_cast<uint64_t>(stats.d_joins),
                     std::memory_order_relaxed);
  intermediate_rows_.fetch_add(stats.intermediate_rows,
                               std::memory_order_relaxed);
  output_rows_.fetch_add(stats.output_rows, std::memory_order_relaxed);
  return result;
}

ServiceStats QueryService::stats() const {
  ServiceStats s;
  s.submitted = submitted_.load(std::memory_order_relaxed);
  s.completed = completed_.load(std::memory_order_relaxed);
  s.failed = failed_.load(std::memory_order_relaxed);
  s.rejected = rejected_.load(std::memory_order_relaxed);
  PlanCache::Stats cache = plan_cache_.stats();
  s.plan_cache_hits = cache.hits;
  s.plan_cache_misses = cache.misses;
  s.plan_cache_evictions = cache.evictions;
  s.exec.elements = elements_.load(std::memory_order_relaxed);
  s.exec.page_fetches = page_fetches_.load(std::memory_order_relaxed);
  s.exec.page_misses = page_misses_.load(std::memory_order_relaxed);
  s.exec.d_joins = d_joins_.load(std::memory_order_relaxed);
  s.exec.intermediate_rows =
      intermediate_rows_.load(std::memory_order_relaxed);
  s.exec.output_rows = output_rows_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace blas

#include "service/query_service.h"

#include <utility>

#include "common/stopwatch.h"
#include "exec/optimizer.h"
#include "service/normalize.h"
#include "xpath/parser.h"

namespace blas {

namespace {

Status WrongBackend(const char* wanted) {
  return Status::InvalidArgument(
      std::string("service does not front a ") + wanted +
      "; use the matching constructor");
}

}  // namespace

QueryService::QueryService(const BlasSystem* system,
                           const ServiceOptions& options)
    : system_(system),
      plan_cache_(options.plan_cache_capacity),
      collection_plan_cache_(options.plan_cache_capacity),
      scatter_queue_capacity_(options.scatter_queue_capacity),
      pool_(options.worker_threads, options.queue_capacity) {}

QueryService::QueryService(std::shared_ptr<const BlasSystem> system,
                           const ServiceOptions& options)
    : owned_system_(std::move(system)),
      system_(owned_system_.get()),
      plan_cache_(options.plan_cache_capacity),
      collection_plan_cache_(options.plan_cache_capacity),
      scatter_queue_capacity_(options.scatter_queue_capacity),
      pool_(options.worker_threads, options.queue_capacity) {}

QueryService::QueryService(const BlasCollection* collection,
                           const ServiceOptions& options)
    : collection_(collection),
      plan_cache_(options.plan_cache_capacity),
      collection_plan_cache_(options.plan_cache_capacity),
      scatter_queue_capacity_(options.scatter_queue_capacity),
      pool_(options.worker_threads, options.queue_capacity) {}

QueryService::QueryService(LiveCollection* live, const ServiceOptions& options)
    : live_(live),
      plan_cache_(options.plan_cache_capacity),
      collection_plan_cache_(options.plan_cache_capacity),
      scatter_queue_capacity_(options.scatter_queue_capacity),
      pool_(options.worker_threads, options.queue_capacity) {
  // The queue needs the pool; the pool initializes after it (see the
  // member-order note in the header), so wire it up in the body.
  ingest_ = std::make_unique<IngestQueue>(live_, &pool_);
  // Epoch tags already make stale per-document plans unservable; the
  // listener reclaims their memory eagerly and keeps the cache honest.
  live_->SetChangeListener(
      [this](const std::string& name, ManifestOp::Kind kind, uint64_t) {
        if (kind != ManifestOp::Kind::kAdd) {
          collection_plan_cache_.InvalidateDocument(name);
        }
      });
}

Result<std::unique_ptr<QueryService>> QueryService::FromXml(
    std::string_view xml, const BlasOptions& blas_options,
    const ServiceOptions& options) {
  BLAS_ASSIGN_OR_RETURN(BlasSystem sys, BlasSystem::FromXml(xml, blas_options));
  auto shared = std::make_shared<const BlasSystem>(std::move(sys));
  return std::make_unique<QueryService>(std::move(shared), options);
}

QueryService::~QueryService() {
  Shutdown();
  // The listener captures `this`; the collection outlives the service.
  if (live_ != nullptr) live_->SetChangeListener(nullptr);
}

void QueryService::Shutdown() { pool_.Shutdown(); }

template <typename T>
std::future<Result<T>> QueryService::SubmitTask(
    std::function<Result<T>()> work) {
  submitted_.fetch_add(1, std::memory_order_relaxed);
  auto task = std::make_shared<std::packaged_task<Result<T>()>>(
      std::move(work));
  std::future<Result<T>> future = task->get_future();
  if (!pool_.Submit([task] { (*task)(); })) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    std::promise<Result<T>> refused;
    refused.set_value(Status::Unsupported("service is shut down"));
    return refused.get_future();
  }
  return future;
}

std::future<Result<QueryResult>> QueryService::Submit(QueryRequest request) {
  return SubmitTask<QueryResult>(
      [this, request = std::move(request)]() { return Run(request); });
}

std::future<Result<StreamSummary>> QueryService::Submit(
    QueryRequest request, MatchCallback on_match) {
  return SubmitTask<StreamSummary>(
      [this, request = std::move(request),
       on_match = std::move(on_match)]() -> Result<StreamSummary> {
        Result<ResultCursor> cursor = MakeCursor(request);
        if (!cursor.ok()) {
          failed_.fetch_add(1, std::memory_order_relaxed);
          return std::move(cursor).status();
        }
        StreamSummary summary;
        while (std::optional<Match> match = cursor->Next()) {
          ++summary.delivered;
          if (!on_match(*match)) {
            summary.cancelled = true;
            break;
          }
        }
        summary.stats = cursor->stats();
        summary.shape = cursor->shape();
        summary.millis = cursor->millis();
        if (summary.cancelled) {
          // An abandoned scan's truncated stats would skew the
          // per-completed-query roll-up.
          cancelled_.fetch_add(1, std::memory_order_relaxed);
        } else {
          completed_.fetch_add(1, std::memory_order_relaxed);
          RollUp(summary.stats);
        }
        return summary;
      });
}

std::future<Result<ResultCursor>> QueryService::SubmitCursor(
    QueryRequest request) {
  return SubmitTask<ResultCursor>([this, request = std::move(request)]() {
    return RunOpenCursor(request);
  });
}

std::vector<std::future<Result<QueryResult>>> QueryService::SubmitBatch(
    std::vector<QueryRequest> requests) {
  std::vector<std::future<Result<QueryResult>>> futures;
  futures.reserve(requests.size());
  for (QueryRequest& request : requests) {
    futures.push_back(Submit(std::move(request)));
  }
  return futures;
}

Result<QueryResult> QueryService::Execute(const QueryRequest& request) {
  submitted_.fetch_add(1, std::memory_order_relaxed);
  return Run(request);
}

Result<ResultCursor> QueryService::OpenCursor(const QueryRequest& request) {
  submitted_.fetch_add(1, std::memory_order_relaxed);
  return RunOpenCursor(request);
}

Result<ResultCursor> QueryService::RunOpenCursor(const QueryRequest& request) {
  // The cursor escapes the service and executes on the client's thread,
  // so it is tallied as an opened cursor, not a completed query, and its
  // ExecStats stay out of the exec roll-up.
  Result<ResultCursor> cursor = MakeCursor(request);
  if (cursor.ok()) {
    cursors_opened_.fetch_add(1, std::memory_order_relaxed);
  } else {
    failed_.fetch_add(1, std::memory_order_relaxed);
  }
  return cursor;
}

Result<ResultCursor> QueryService::MakeCursor(const QueryRequest& request) {
  if (system_ == nullptr) return WrongBackend("single document");
  std::shared_ptr<const CachedPlan> plan;
  std::string key;
  const QueryOptions& options = request.options;
  const bool use_cache =
      !request.bypass_plan_cache && plan_cache_.capacity() > 0;
  if (use_cache) {
    key = PlanCacheKey(request.xpath, options.translator,
                       options.exec.optimize_join_order);
    plan = plan_cache_.Get(key);
  }
  if (plan == nullptr) {
    Result<ExecPlan> planned = system_->Plan(request.xpath, options.translator);
    if (!planned.ok()) return std::move(planned).status();
    CachedPlan fresh;
    fresh.plan = std::move(planned).value();
    CostModel model(&system_->summary(), &system_->dict());
    if (options.exec.optimize_join_order) {
      fresh.plan = OptimizeJoinOrder(fresh.plan, model);
    }
    if (use_cache || options.engine == Engine::kAuto) {
      // Skippable when the engine is pinned and the plan won't be cached
      // (cardinality estimation walks the path summary per part).
      fresh.auto_engine = ChooseEngine(fresh.plan, model);
    }
    if (use_cache || options.limit > 0) {
      // Same reasoning as auto_engine: skip the summary walks when the
      // verdict can neither be cached nor used (unbounded request).
      fresh.stream_info = system_->AnalyzeStreamability(fresh.plan);
    }
    plan = std::make_shared<const CachedPlan>(std::move(fresh));
    if (use_cache) plan_cache_.Put(key, plan);
  }

  Engine engine =
      options.engine == Engine::kAuto ? plan->auto_engine : options.engine;
  // Alias the cached entry so the plan outlives any eviction while this
  // cursor is still streaming.
  std::shared_ptr<const ExecPlan> shared_plan(plan, &plan->plan);
  return system_->OpenPlan(std::move(shared_plan), engine, options,
                           &plan->stream_info);
}

Result<CollectionCursor> QueryService::MakeCollectionCursor(
    const QueryRequest& request, uint64_t* epoch_at_open) {
  if (collection_ == nullptr && live_ == nullptr) {
    return WrongBackend("collection");
  }
  // A live service pins the epoch current right now; the cursor drains
  // exactly this generation no matter what publishes meanwhile (each
  // per-document producer holds its document via shared_ptr).
  std::shared_ptr<const CollectionState> state =
      live_ != nullptr ? live_->Snapshot() : nullptr;
  const BlasCollection* collection =
      state != nullptr ? &state->collection : collection_;
  if (epoch_at_open != nullptr) {
    *epoch_at_open = state != nullptr ? state->epoch : 0;
  }
  const QueryOptions& options = request.options;
  const bool use_cache =
      !request.bypass_plan_cache && collection_plan_cache_.capacity() > 0;
  std::shared_ptr<const CachedCollectionPlan> entry;
  std::string key;
  if (use_cache) {
    key = PlanCacheKey(request.xpath, options.translator,
                       options.exec.optimize_join_order);
    entry = collection_plan_cache_.Get(key);
  }
  if (entry == nullptr) {
    BLAS_ASSIGN_OR_RETURN(Query parsed, ParseXPath(request.xpath));
    entry = std::make_shared<const CachedCollectionPlan>(std::move(parsed));
    if (use_cache) collection_plan_cache_.Put(key, entry);
  }

  // Per-document opener: the scatter workers consult the cached
  // per-document plans and translate (then publish) on first touch.
  // Plans are tagged with the document's last-changed epoch, so a
  // replaced document can never serve its predecessor's plan (static
  // collections tag everything 0).
  BlasCollection::DocCursorOpener opener =
      [this, entry, state](const std::string& name, const BlasSystem& sys,
                           const Query& query,
                           const QueryOptions& doc_options)
      -> Result<ResultCursor> {
    uint64_t doc_epoch = 0;
    if (state != nullptr) {
      auto it = state->doc_epochs.find(name);
      if (it != state->doc_epochs.end()) doc_epoch = it->second;
    }
    std::shared_ptr<const CachedPlan> plan = entry->ForDoc(name, doc_epoch);
    if (plan == nullptr) {
      doc_plan_misses_.fetch_add(1, std::memory_order_relaxed);
      Result<ExecPlan> planned = sys.Plan(query, doc_options.translator);
      if (!planned.ok()) return std::move(planned).status();
      CachedPlan fresh;
      fresh.plan = std::move(planned).value();
      CostModel model(&sys.summary(), &sys.dict());
      if (doc_options.exec.optimize_join_order) {
        fresh.plan = OptimizeJoinOrder(fresh.plan, model);
      }
      fresh.auto_engine = ChooseEngine(fresh.plan, model);
      fresh.stream_info = sys.AnalyzeStreamability(fresh.plan);
      plan = std::make_shared<const CachedPlan>(std::move(fresh));
      entry->PutDoc(name, doc_epoch, plan);
    } else {
      doc_plan_hits_.fetch_add(1, std::memory_order_relaxed);
    }
    Engine engine = doc_options.engine == Engine::kAuto ? plan->auto_engine
                                                        : doc_options.engine;
    std::shared_ptr<const ExecPlan> shared_plan(plan, &plan->plan);
    return sys.OpenPlan(std::move(shared_plan), engine, doc_options,
                        &plan->stream_info);
  };

  BlasCollection::ScatterOptions scatter;
  scatter.pool = &pool_;
  scatter.queue_capacity = scatter_queue_capacity_;
  return collection->OpenCursor(entry->query(), options, scatter,
                                std::move(opener));
}

void QueryService::CountChurnOverlap(uint64_t epoch_at_open) {
  if (live_ != nullptr && live_->epoch() != epoch_at_open) {
    churn_queries_.fetch_add(1, std::memory_order_relaxed);
  }
}

Result<BlasCollection::CollectionResult> QueryService::RunCollection(
    const QueryRequest& request) {
  uint64_t epoch_at_open = 0;
  Result<CollectionCursor> cursor =
      MakeCollectionCursor(request, &epoch_at_open);
  if (!cursor.ok()) {
    failed_.fetch_add(1, std::memory_order_relaxed);
    return std::move(cursor).status();
  }
  Result<BlasCollection::CollectionResult> result = cursor->Drain();
  if (!result.ok()) {
    failed_.fetch_add(1, std::memory_order_relaxed);
    return result;
  }
  completed_.fetch_add(1, std::memory_order_relaxed);
  RollUp(result->stats);
  CountChurnOverlap(epoch_at_open);
  return result;
}

Result<CollectionCursor> QueryService::RunOpenCollectionCursor(
    const QueryRequest& request) {
  // Same accounting stance as RunOpenCursor: the merge runs on the
  // client's thread, so this counts as an opened cursor, not a
  // completed query.
  Result<CollectionCursor> cursor = MakeCollectionCursor(request);
  if (cursor.ok()) {
    cursors_opened_.fetch_add(1, std::memory_order_relaxed);
  } else {
    failed_.fetch_add(1, std::memory_order_relaxed);
  }
  return cursor;
}

std::future<Result<BlasCollection::CollectionResult>>
QueryService::SubmitCollection(QueryRequest request) {
  return SubmitTask<BlasCollection::CollectionResult>(
      [this, request = std::move(request)]() { return RunCollection(request); });
}

std::future<Result<StreamSummary>> QueryService::SubmitCollection(
    QueryRequest request, CollectionMatchCallback on_match) {
  return SubmitTask<StreamSummary>(
      [this, request = std::move(request),
       on_match = std::move(on_match)]() -> Result<StreamSummary> {
        Stopwatch watch;
        uint64_t epoch_at_open = 0;
        Result<CollectionCursor> cursor =
            MakeCollectionCursor(request, &epoch_at_open);
        if (!cursor.ok()) {
          failed_.fetch_add(1, std::memory_order_relaxed);
          return std::move(cursor).status();
        }
        StreamSummary summary;
        while (std::optional<CollectionMatch> match = cursor->Next()) {
          ++summary.delivered;
          if (!on_match(*match)) {
            summary.cancelled = true;
            break;
          }
        }
        if (!cursor->status().ok()) {
          failed_.fetch_add(1, std::memory_order_relaxed);
          return cursor->status();
        }
        summary.stats = cursor->SettledStats();
        summary.millis = watch.ElapsedMillis();
        if (summary.cancelled) {
          cancelled_.fetch_add(1, std::memory_order_relaxed);
        } else {
          completed_.fetch_add(1, std::memory_order_relaxed);
          RollUp(summary.stats);
          CountChurnOverlap(epoch_at_open);
        }
        return summary;
      });
}

std::future<Result<CollectionCursor>> QueryService::SubmitCollectionCursor(
    QueryRequest request) {
  return SubmitTask<CollectionCursor>([this, request = std::move(request)]() {
    return RunOpenCollectionCursor(request);
  });
}

Result<BlasCollection::CollectionResult> QueryService::ExecuteCollection(
    const QueryRequest& request) {
  submitted_.fetch_add(1, std::memory_order_relaxed);
  return RunCollection(request);
}

Result<CollectionCursor> QueryService::OpenCollectionCursor(
    const QueryRequest& request) {
  submitted_.fetch_add(1, std::memory_order_relaxed);
  return RunOpenCollectionCursor(request);
}

// ------------------------------------------------------- admin (live) ---

namespace {

std::future<Status> NotLive() {
  std::promise<Status> refused;
  refused.set_value(Status::InvalidArgument(
      "service does not front a live collection; use the LiveCollection "
      "constructor"));
  return refused.get_future();
}

}  // namespace

std::future<Status> QueryService::SubmitAddDocument(std::string name,
                                                    std::string xml) {
  if (ingest_ == nullptr) return NotLive();
  return ingest_->SubmitAdd(std::move(name), std::move(xml));
}

std::future<Status> QueryService::SubmitReplaceDocument(std::string name,
                                                        std::string xml) {
  if (ingest_ == nullptr) return NotLive();
  return ingest_->SubmitReplace(std::move(name), std::move(xml));
}

std::future<Status> QueryService::SubmitRemoveDocument(std::string name) {
  if (ingest_ == nullptr) return NotLive();
  return ingest_->SubmitRemove(std::move(name));
}

std::future<Status> QueryService::SubmitIngestBatch(
    std::vector<IngestQueue::DocOp> ops) {
  if (ingest_ == nullptr) return NotLive();
  return ingest_->SubmitBatch(std::move(ops));
}

void QueryService::DrainIngest() {
  if (ingest_ != nullptr) ingest_->Drain();
}

void QueryService::RollUp(const ExecStats& stats) {
  elements_.fetch_add(stats.elements, std::memory_order_relaxed);
  page_fetches_.fetch_add(stats.page_fetches, std::memory_order_relaxed);
  page_misses_.fetch_add(stats.page_misses, std::memory_order_relaxed);
  io_reads_.fetch_add(stats.io_reads, std::memory_order_relaxed);
  d_joins_.fetch_add(stats.d_joins, std::memory_order_relaxed);
  intermediate_rows_.fetch_add(stats.intermediate_rows,
                               std::memory_order_relaxed);
  output_rows_.fetch_add(stats.output_rows, std::memory_order_relaxed);
}

Result<QueryResult> QueryService::Run(const QueryRequest& request) {
  Result<ResultCursor> cursor = MakeCursor(request);
  if (!cursor.ok()) {
    failed_.fetch_add(1, std::memory_order_relaxed);
    return std::move(cursor).status();
  }
  QueryResult result = cursor->Drain();
  completed_.fetch_add(1, std::memory_order_relaxed);
  RollUp(result.stats);
  return result;
}

ServiceStats QueryService::stats() const {
  ServiceStats s;
  s.submitted = submitted_.load(std::memory_order_relaxed);
  s.completed = completed_.load(std::memory_order_relaxed);
  s.failed = failed_.load(std::memory_order_relaxed);
  s.rejected = rejected_.load(std::memory_order_relaxed);
  s.cursors_opened = cursors_opened_.load(std::memory_order_relaxed);
  s.cancelled = cancelled_.load(std::memory_order_relaxed);
  // Only one of the two caches sees traffic (the service fronts either a
  // system or a collection); summing keeps the report uniform.
  PlanCache::Stats cache = plan_cache_.stats();
  CollectionPlanCache::Stats coll_cache = collection_plan_cache_.stats();
  s.plan_cache_hits = cache.hits + coll_cache.hits;
  s.plan_cache_misses = cache.misses + coll_cache.misses;
  s.plan_cache_evictions = cache.evictions + coll_cache.evictions;
  s.doc_plan_hits = doc_plan_hits_.load(std::memory_order_relaxed);
  s.doc_plan_misses = doc_plan_misses_.load(std::memory_order_relaxed);
  s.queries_served_during_churn =
      churn_queries_.load(std::memory_order_relaxed);
  if (live_ != nullptr) {
    LiveCollection::Stats live = live_->stats();
    s.docs_ingested = live.docs_ingested;
    s.docs_removed = live.docs_removed;
    s.epochs_published = live.epochs_published;
    s.manifest_bytes = live.manifest_bytes;
  }
  s.exec.elements = elements_.load(std::memory_order_relaxed);
  s.exec.page_fetches = page_fetches_.load(std::memory_order_relaxed);
  s.exec.page_misses = page_misses_.load(std::memory_order_relaxed);
  s.exec.io_reads = io_reads_.load(std::memory_order_relaxed);
  s.exec.d_joins = d_joins_.load(std::memory_order_relaxed);
  s.exec.intermediate_rows =
      intermediate_rows_.load(std::memory_order_relaxed);
  s.exec.output_rows = output_rows_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace blas

#include "service/query_service.h"

#include <algorithm>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <utility>

#include "common/stopwatch.h"
#include "exec/optimizer.h"
#include "obs/snapshot.h"
#include "service/normalize.h"
#include "xpath/parser.h"

namespace blas {

namespace {

Status WrongBackend(const char* wanted) {
  return Status::InvalidArgument(
      std::string("service does not front a ") + wanted +
      "; use the matching constructor");
}

void AppendF(std::string* out, const char* fmt, ...) {
  char buf[256];
  va_list args;
  va_start(args, fmt);
  int n = std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  if (n > 0) out->append(buf, static_cast<size_t>(std::min<int>(
                                  n, static_cast<int>(sizeof(buf)) - 1)));
}

}  // namespace

QueryService::QueryService(const BlasSystem* system,
                           const ServiceOptions& options)
    : system_(system),
      plan_cache_(options.plan_cache_capacity),
      collection_plan_cache_(options.plan_cache_capacity),
      scatter_queue_capacity_(options.scatter_queue_capacity),
      pool_(options.worker_threads, options.queue_capacity),
      trace_ring_(options.trace_ring_capacity),
      slow_query_log_(options.slow_query_millis,
                      options.slow_query_log_capacity),
      trace_sample_every_(options.trace_sample_every) {
  InitMetrics();
}

QueryService::QueryService(std::shared_ptr<const BlasSystem> system,
                           const ServiceOptions& options)
    : owned_system_(std::move(system)),
      system_(owned_system_.get()),
      plan_cache_(options.plan_cache_capacity),
      collection_plan_cache_(options.plan_cache_capacity),
      scatter_queue_capacity_(options.scatter_queue_capacity),
      pool_(options.worker_threads, options.queue_capacity),
      trace_ring_(options.trace_ring_capacity),
      slow_query_log_(options.slow_query_millis,
                      options.slow_query_log_capacity),
      trace_sample_every_(options.trace_sample_every) {
  InitMetrics();
}

QueryService::QueryService(const BlasCollection* collection,
                           const ServiceOptions& options)
    : collection_(collection),
      plan_cache_(options.plan_cache_capacity),
      collection_plan_cache_(options.plan_cache_capacity),
      scatter_queue_capacity_(options.scatter_queue_capacity),
      pool_(options.worker_threads, options.queue_capacity),
      trace_ring_(options.trace_ring_capacity),
      slow_query_log_(options.slow_query_millis,
                      options.slow_query_log_capacity),
      trace_sample_every_(options.trace_sample_every) {
  InitMetrics();
}

QueryService::QueryService(LiveCollection* live, const ServiceOptions& options)
    : live_(live),
      plan_cache_(options.plan_cache_capacity),
      collection_plan_cache_(options.plan_cache_capacity),
      scatter_queue_capacity_(options.scatter_queue_capacity),
      pool_(options.worker_threads, options.queue_capacity),
      trace_ring_(options.trace_ring_capacity),
      slow_query_log_(options.slow_query_millis,
                      options.slow_query_log_capacity),
      trace_sample_every_(options.trace_sample_every) {
  InitMetrics();
  // The queue needs the pool; the pool initializes after it (see the
  // member-order note in the header), so wire it up in the body.
  ingest_ = std::make_unique<IngestQueue>(live_, &pool_);
  // Epoch tags already make stale per-document plans unservable; the
  // listener reclaims their memory eagerly and keeps the cache honest.
  live_->SetChangeListener(
      [this](const std::string& name, ManifestOp::Kind kind, uint64_t) {
        if (kind != ManifestOp::Kind::kAdd) {
          collection_plan_cache_.InvalidateDocument(name);
        }
      });
}

Result<std::unique_ptr<QueryService>> QueryService::FromXml(
    std::string_view xml, const BlasOptions& blas_options,
    const ServiceOptions& options) {
  BLAS_ASSIGN_OR_RETURN(BlasSystem sys, BlasSystem::FromXml(xml, blas_options));
  auto shared = std::make_shared<const BlasSystem>(std::move(sys));
  return std::make_unique<QueryService>(std::move(shared), options);
}

QueryService::~QueryService() {
  Shutdown();
  // The listener captures `this`; the collection outlives the service.
  if (live_ != nullptr) live_->SetChangeListener(nullptr);
}

void QueryService::Shutdown() { pool_.Shutdown(); }

void QueryService::InitMetrics() {
  query_latency_ns_ = metrics_.GetHistogram(
      "blas_query_latency_ns",
      "Wall time of completed single-document queries");
  collection_latency_ns_ = metrics_.GetHistogram(
      "blas_collection_query_latency_ns",
      "Wall time of completed collection queries (scatter + merge)");
  stage_parse_ns_ =
      metrics_.GetHistogram("blas_stage_parse_ns", "XPath parse stage");
  stage_translate_ns_ = metrics_.GetHistogram(
      "blas_stage_translate_ns", "Query-to-plan translation stage");
  stage_optimize_ns_ = metrics_.GetHistogram(
      "blas_stage_optimize_ns",
      "Join-order optimization, engine choice and streamability analysis");
  stage_execute_ns_ = metrics_.GetHistogram(
      "blas_stage_execute_ns",
      "Cursor open (engine execution / streaming prefix)");
  metrics_.RegisterCallbackGauge(
      "blas_queries_completed", "Queries run to completion by the service",
      [this] {
        return static_cast<int64_t>(
            completed_.load(std::memory_order_relaxed));
      });
  metrics_.RegisterCallbackGauge(
      "blas_queries_failed", "Queries that failed to parse/translate/execute",
      [this] {
        return static_cast<int64_t>(failed_.load(std::memory_order_relaxed));
      });
  metrics_.RegisterCallbackGauge(
      "blas_plan_cache_hit_percent",
      "Plan-cache hit ratio over the service's lifetime, in percent",
      [this] {
        PlanCache::Stats cache = plan_cache_.stats();
        CollectionPlanCache::Stats coll = collection_plan_cache_.stats();
        uint64_t hits = cache.hits + coll.hits;
        uint64_t total = hits + cache.misses + coll.misses;
        return total == 0 ? int64_t{0}
                          : static_cast<int64_t>(hits * 100 / total);
      });
}

std::shared_ptr<obs::TraceContext> QueryService::MaybeStartTrace(
    const QueryRequest& request) {
  bool traced = request.options.trace;
  if (!traced && trace_sample_every_ > 0) {
    traced = trace_ticker_.fetch_add(1, std::memory_order_relaxed) %
                 trace_sample_every_ ==
             0;
  }
  if (!traced) return nullptr;
  return std::make_shared<obs::TraceContext>(NormalizeXPath(request.xpath));
}

std::shared_ptr<const obs::Trace> QueryService::FinishQueryObs(
    const QueryRequest& request, double millis, obs::Histogram* latency,
    const ExecStats& stats, uint64_t output_rows, const char* engine,
    obs::TraceContext* trace) {
  latency->Record(static_cast<uint64_t>(millis * 1e6));
  std::shared_ptr<const obs::Trace> sealed;
  if (trace != nullptr) {
    sealed = trace->Finish();
    trace_ring_.Push(sealed);
  }
  if (slow_query_log_.enabled() &&
      millis >= slow_query_log_.threshold_millis()) {
    obs::SlowQueryEntry entry;
    entry.query = NormalizeXPath(request.xpath);
    entry.translator = TranslatorName(request.options.translator);
    entry.engine = engine;
    entry.millis = millis;
    entry.elements = stats.elements;
    entry.page_fetches = stats.page_fetches;
    entry.page_misses = stats.page_misses;
    entry.io_reads = stats.io_reads;
    entry.output_rows = output_rows;
    entry.trace = sealed;
    slow_query_log_.MaybeRecord(std::move(entry));
  }
  return sealed;
}

template <typename T>
std::future<Result<T>> QueryService::SubmitTask(
    std::function<Result<T>()> work) {
  submitted_.fetch_add(1, std::memory_order_relaxed);
  auto task = std::make_shared<std::packaged_task<Result<T>()>>(
      std::move(work));
  std::future<Result<T>> future = task->get_future();
  if (!pool_.Submit([task] { (*task)(); })) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    std::promise<Result<T>> refused;
    refused.set_value(Status::Unsupported("service is shut down"));
    return refused.get_future();
  }
  return future;
}

std::future<Result<QueryResult>> QueryService::Submit(QueryRequest request) {
  return SubmitTask<QueryResult>(
      [this, request = std::move(request)]() { return Run(request); });
}

std::future<Result<StreamSummary>> QueryService::Submit(
    QueryRequest request, MatchCallback on_match) {
  return SubmitTask<StreamSummary>(
      [this, request = std::move(request),
       on_match = std::move(on_match)]() -> Result<StreamSummary> {
        Stopwatch watch;
        std::shared_ptr<obs::TraceContext> trace = MaybeStartTrace(request);
        obs::TraceContext::Scope scope(trace.get());
        Result<ResultCursor> cursor = MakeCursor(request, trace.get());
        if (!cursor.ok()) {
          failed_.fetch_add(1, std::memory_order_relaxed);
          return std::move(cursor).status();
        }
        const ExecStats open_stats = cursor->stats();
        StreamSummary summary;
        {
          obs::SpanTimer span(trace.get(), "stream");
          while (std::optional<Match> match = cursor->Next()) {
            ++summary.delivered;
            if (!on_match(*match)) {
              summary.cancelled = true;
              break;
            }
          }
          summary.stats = cursor->stats();
          if (trace != nullptr) {
            span.set_counters(
                summary.stats.elements - open_stats.elements,
                summary.stats.page_fetches - open_stats.page_fetches,
                summary.stats.page_misses - open_stats.page_misses,
                summary.stats.io_reads - open_stats.io_reads);
          }
        }
        summary.shape = cursor->shape();
        summary.millis = cursor->millis();
        if (summary.cancelled) {
          // An abandoned scan's truncated stats would skew the
          // per-completed-query roll-up.
          cancelled_.fetch_add(1, std::memory_order_relaxed);
        } else {
          completed_.fetch_add(1, std::memory_order_relaxed);
          RollUp(summary.stats);
          offset_skipped_.fetch_add(cursor->offset_skipped(),
                                    std::memory_order_relaxed);
          FinishQueryObs(request, watch.ElapsedMillis(), query_latency_ns_,
                         summary.stats, summary.delivered,
                         EngineName(cursor->engine()), trace.get());
        }
        return summary;
      });
}

std::future<Result<ResultCursor>> QueryService::SubmitCursor(
    QueryRequest request) {
  return SubmitTask<ResultCursor>([this, request = std::move(request)]() {
    return RunOpenCursor(request);
  });
}

std::vector<std::future<Result<QueryResult>>> QueryService::SubmitBatch(
    std::vector<QueryRequest> requests) {
  std::vector<std::future<Result<QueryResult>>> futures;
  futures.reserve(requests.size());
  for (QueryRequest& request : requests) {
    futures.push_back(Submit(std::move(request)));
  }
  return futures;
}

Result<QueryResult> QueryService::Execute(const QueryRequest& request) {
  submitted_.fetch_add(1, std::memory_order_relaxed);
  return Run(request);
}

Result<ResultCursor> QueryService::OpenCursor(const QueryRequest& request) {
  submitted_.fetch_add(1, std::memory_order_relaxed);
  return RunOpenCursor(request);
}

Result<ResultCursor> QueryService::RunOpenCursor(const QueryRequest& request) {
  // The cursor escapes the service and executes on the client's thread,
  // so it is tallied as an opened cursor, not a completed query, and its
  // ExecStats stay out of the exec roll-up.
  Result<ResultCursor> cursor = MakeCursor(request);
  if (cursor.ok()) {
    cursors_opened_.fetch_add(1, std::memory_order_relaxed);
  } else {
    failed_.fetch_add(1, std::memory_order_relaxed);
  }
  return cursor;
}

Result<ResultCursor> QueryService::MakeCursor(const QueryRequest& request,
                                              obs::TraceContext* trace) {
  if (system_ == nullptr) return WrongBackend("single document");
  std::shared_ptr<const CachedPlan> plan;
  std::string key;
  const QueryOptions& options = request.options;
  const bool use_cache =
      !request.bypass_plan_cache && plan_cache_.capacity() > 0;
  if (use_cache) {
    key = PlanCacheKey(request.xpath, options.translator,
                       options.exec.optimize_join_order);
    obs::SpanTimer span(trace, "plan_cache");
    plan = plan_cache_.Get(key);
    if (trace != nullptr) span.set_note(plan != nullptr ? "hit" : "miss");
  }
  if (plan == nullptr) {
    Query parsed;
    {
      obs::SpanTimer span(trace, "parse");
      Stopwatch timer;
      Result<Query> query = ParseXPath(request.xpath);
      stage_parse_ns_->Record(timer.ElapsedNanos());
      if (!query.ok()) return std::move(query).status();
      parsed = std::move(query).value();
    }
    CachedPlan fresh;
    {
      obs::SpanTimer span(trace, "translate");
      if (trace != nullptr) span.set_note(TranslatorName(options.translator));
      Stopwatch timer;
      Result<ExecPlan> planned = system_->Plan(parsed, options.translator);
      stage_translate_ns_->Record(timer.ElapsedNanos());
      if (!planned.ok()) return std::move(planned).status();
      fresh.plan = std::move(planned).value();
    }
    {
      obs::SpanTimer span(trace, "optimize");
      Stopwatch timer;
      CostModel model(&system_->summary(), &system_->dict());
      if (options.exec.optimize_join_order) {
        fresh.plan = OptimizeJoinOrder(fresh.plan, model);
      }
      if (use_cache || options.engine == Engine::kAuto) {
        // Skippable when the engine is pinned and the plan won't be cached
        // (cardinality estimation walks the path summary per part).
        fresh.auto_engine = ChooseEngine(fresh.plan, model);
      }
      if (use_cache || options.limit > 0) {
        // Same reasoning as auto_engine: skip the summary walks when the
        // verdict can neither be cached nor used (unbounded request).
        fresh.stream_info = system_->AnalyzeStreamability(fresh.plan);
      }
      stage_optimize_ns_->Record(timer.ElapsedNanos());
    }
    plan = std::make_shared<const CachedPlan>(std::move(fresh));
    if (use_cache) plan_cache_.Put(key, plan);
  }

  Engine engine =
      options.engine == Engine::kAuto ? plan->auto_engine : options.engine;
  // Alias the cached entry so the plan outlives any eviction while this
  // cursor is still streaming.
  std::shared_ptr<const ExecPlan> shared_plan(plan, &plan->plan);
  obs::SpanTimer span(trace, "execute");
  if (trace != nullptr) span.set_note(EngineName(engine));
  Stopwatch timer;
  Result<ResultCursor> cursor = system_->OpenPlan(
      std::move(shared_plan), engine, options, &plan->stream_info);
  stage_execute_ns_->Record(timer.ElapsedNanos());
  if (trace != nullptr && cursor.ok()) {
    // Open runs the engine (or the streaming prefix); attribute the
    // counters it accumulated to this stage.
    const ExecStats& s = cursor->stats();
    span.set_counters(s.elements, s.page_fetches, s.page_misses, s.io_reads);
  }
  return cursor;
}

Result<CollectionCursor> QueryService::MakeCollectionCursor(
    const QueryRequest& request, uint64_t* epoch_at_open,
    std::shared_ptr<obs::TraceContext> trace) {
  if (collection_ == nullptr && live_ == nullptr) {
    return WrongBackend("collection");
  }
  // A live service pins the epoch current right now; the cursor drains
  // exactly this generation no matter what publishes meanwhile (each
  // per-document producer holds its document via shared_ptr).
  std::shared_ptr<const CollectionState> state =
      live_ != nullptr ? live_->Snapshot() : nullptr;
  const BlasCollection* collection =
      state != nullptr ? &state->collection : collection_;
  if (epoch_at_open != nullptr) {
    *epoch_at_open = state != nullptr ? state->epoch : 0;
  }
  const QueryOptions& options = request.options;
  const bool use_cache =
      !request.bypass_plan_cache && collection_plan_cache_.capacity() > 0;
  std::shared_ptr<const CachedCollectionPlan> entry;
  std::string key;
  if (use_cache) {
    key = PlanCacheKey(request.xpath, options.translator,
                       options.exec.optimize_join_order);
    obs::SpanTimer span(trace.get(), "plan_cache");
    entry = collection_plan_cache_.Get(key);
    if (trace != nullptr) span.set_note(entry != nullptr ? "hit" : "miss");
  }
  if (entry == nullptr) {
    obs::SpanTimer span(trace.get(), "parse");
    Stopwatch timer;
    Result<Query> parsed = ParseXPath(request.xpath);
    stage_parse_ns_->Record(timer.ElapsedNanos());
    if (!parsed.ok()) return std::move(parsed).status();
    entry = std::make_shared<const CachedCollectionPlan>(
        std::move(parsed).value());
    if (use_cache) collection_plan_cache_.Put(key, entry);
  }

  // Per-document opener: the scatter workers consult the cached
  // per-document plans and translate (then publish) on first touch.
  // Plans are tagged with the document's last-changed epoch, so a
  // replaced document can never serve its predecessor's plan (static
  // collections tag everything 0).
  BlasCollection::DocCursorOpener opener =
      [this, entry, state, trace](const std::string& name,
                                  const BlasSystem& sys, const Query& query,
                                  const QueryOptions& doc_options)
      -> Result<ResultCursor> {
    // The opener runs on scatter workers: install the trace context so
    // this document's page reads attribute to the query, and record the
    // open (translate + engine run) as one span named for the document.
    obs::TraceContext::Scope trace_scope(trace.get());
    obs::SpanTimer span(trace.get(), "open_doc");
    if (trace != nullptr) span.set_note(name);
    uint64_t doc_epoch = 0;
    if (state != nullptr) {
      auto it = state->doc_epochs.find(name);
      if (it != state->doc_epochs.end()) doc_epoch = it->second;
    }
    std::shared_ptr<const CachedPlan> plan = entry->ForDoc(name, doc_epoch);
    if (plan == nullptr) {
      doc_plan_misses_.fetch_add(1, std::memory_order_relaxed);
      Stopwatch timer;
      Result<ExecPlan> planned = sys.Plan(query, doc_options.translator);
      stage_translate_ns_->Record(timer.ElapsedNanos());
      if (!planned.ok()) return std::move(planned).status();
      CachedPlan fresh;
      fresh.plan = std::move(planned).value();
      CostModel model(&sys.summary(), &sys.dict());
      if (doc_options.exec.optimize_join_order) {
        fresh.plan = OptimizeJoinOrder(fresh.plan, model);
      }
      fresh.auto_engine = ChooseEngine(fresh.plan, model);
      fresh.stream_info = sys.AnalyzeStreamability(fresh.plan);
      plan = std::make_shared<const CachedPlan>(std::move(fresh));
      entry->PutDoc(name, doc_epoch, plan);
    } else {
      doc_plan_hits_.fetch_add(1, std::memory_order_relaxed);
    }
    Engine engine = doc_options.engine == Engine::kAuto ? plan->auto_engine
                                                        : doc_options.engine;
    std::shared_ptr<const ExecPlan> shared_plan(plan, &plan->plan);
    Result<ResultCursor> cursor = sys.OpenPlan(
        std::move(shared_plan), engine, doc_options, &plan->stream_info);
    if (trace != nullptr && cursor.ok()) {
      const ExecStats& s = cursor->stats();
      span.set_counters(s.elements, s.page_fetches, s.page_misses,
                        s.io_reads);
    }
    return cursor;
  };

  BlasCollection::ScatterOptions scatter;
  scatter.pool = &pool_;
  scatter.queue_capacity = scatter_queue_capacity_;
  obs::SpanTimer span(trace.get(), "open_scatter");
  return collection->OpenCursor(entry->query(), options, scatter,
                                std::move(opener));
}

void QueryService::CountChurnOverlap(uint64_t epoch_at_open) {
  if (live_ != nullptr && live_->epoch() != epoch_at_open) {
    churn_queries_.fetch_add(1, std::memory_order_relaxed);
  }
}

Result<BlasCollection::CollectionResult> QueryService::RunCollection(
    const QueryRequest& request) {
  Stopwatch watch;
  std::shared_ptr<obs::TraceContext> trace = MaybeStartTrace(request);
  obs::TraceContext::Scope scope(trace.get());
  uint64_t epoch_at_open = 0;
  Result<CollectionCursor> cursor =
      MakeCollectionCursor(request, &epoch_at_open, trace);
  if (!cursor.ok()) {
    failed_.fetch_add(1, std::memory_order_relaxed);
    return std::move(cursor).status();
  }
  Result<BlasCollection::CollectionResult> result = [&] {
    obs::SpanTimer span(trace.get(), "merge");
    Result<BlasCollection::CollectionResult> drained = cursor->Drain();
    if (trace != nullptr && drained.ok()) {
      span.set_counters(drained->stats.elements, drained->stats.page_fetches,
                        drained->stats.page_misses, drained->stats.io_reads);
    }
    return drained;
  }();
  if (!result.ok()) {
    failed_.fetch_add(1, std::memory_order_relaxed);
    return result;
  }
  completed_.fetch_add(1, std::memory_order_relaxed);
  RollUp(result->stats);
  offset_skipped_.fetch_add(result->offset_skipped,
                            std::memory_order_relaxed);
  CollectionCursor::ScatterStats scatter = cursor->scatter_stats();
  docs_executed_.fetch_add(scatter.docs_executed, std::memory_order_relaxed);
  docs_cancelled_.fetch_add(scatter.docs_cancelled,
                            std::memory_order_relaxed);
  CountChurnOverlap(epoch_at_open);
  FinishQueryObs(request, watch.ElapsedMillis(), collection_latency_ns_,
                 result->stats, result->total_matches,
                 EngineName(request.options.engine), trace.get());
  return result;
}

Result<CollectionCursor> QueryService::RunOpenCollectionCursor(
    const QueryRequest& request) {
  // Same accounting stance as RunOpenCursor: the merge runs on the
  // client's thread, so this counts as an opened cursor, not a
  // completed query.
  Result<CollectionCursor> cursor = MakeCollectionCursor(request);
  if (cursor.ok()) {
    cursors_opened_.fetch_add(1, std::memory_order_relaxed);
  } else {
    failed_.fetch_add(1, std::memory_order_relaxed);
  }
  return cursor;
}

std::future<Result<BlasCollection::CollectionResult>>
QueryService::SubmitCollection(QueryRequest request) {
  return SubmitTask<BlasCollection::CollectionResult>(
      [this, request = std::move(request)]() { return RunCollection(request); });
}

std::future<Result<StreamSummary>> QueryService::SubmitCollection(
    QueryRequest request, CollectionMatchCallback on_match) {
  return SubmitTask<StreamSummary>(
      [this, request = std::move(request),
       on_match = std::move(on_match)]() -> Result<StreamSummary> {
        Stopwatch watch;
        std::shared_ptr<obs::TraceContext> trace = MaybeStartTrace(request);
        obs::TraceContext::Scope scope(trace.get());
        uint64_t epoch_at_open = 0;
        Result<CollectionCursor> cursor =
            MakeCollectionCursor(request, &epoch_at_open, trace);
        if (!cursor.ok()) {
          failed_.fetch_add(1, std::memory_order_relaxed);
          return std::move(cursor).status();
        }
        StreamSummary summary;
        {
          obs::SpanTimer span(trace.get(), "merge");
          while (std::optional<CollectionMatch> match = cursor->Next()) {
            ++summary.delivered;
            if (!on_match(*match)) {
              summary.cancelled = true;
              break;
            }
          }
        }
        if (!cursor->status().ok()) {
          failed_.fetch_add(1, std::memory_order_relaxed);
          return cursor->status();
        }
        summary.stats = cursor->SettledStats();
        summary.millis = watch.ElapsedMillis();
        if (summary.cancelled) {
          cancelled_.fetch_add(1, std::memory_order_relaxed);
        } else {
          completed_.fetch_add(1, std::memory_order_relaxed);
          RollUp(summary.stats);
          offset_skipped_.fetch_add(cursor->offset_skipped(),
                                    std::memory_order_relaxed);
          CollectionCursor::ScatterStats scatter = cursor->scatter_stats();
          docs_executed_.fetch_add(scatter.docs_executed,
                                   std::memory_order_relaxed);
          docs_cancelled_.fetch_add(scatter.docs_cancelled,
                                    std::memory_order_relaxed);
          CountChurnOverlap(epoch_at_open);
          FinishQueryObs(request, summary.millis, collection_latency_ns_,
                         summary.stats, summary.delivered,
                         EngineName(request.options.engine), trace.get());
        }
        return summary;
      });
}

std::future<Result<CollectionCursor>> QueryService::SubmitCollectionCursor(
    QueryRequest request) {
  return SubmitTask<CollectionCursor>([this, request = std::move(request)]() {
    return RunOpenCollectionCursor(request);
  });
}

Result<BlasCollection::CollectionResult> QueryService::ExecuteCollection(
    const QueryRequest& request) {
  submitted_.fetch_add(1, std::memory_order_relaxed);
  return RunCollection(request);
}

Result<CollectionCursor> QueryService::OpenCollectionCursor(
    const QueryRequest& request) {
  submitted_.fetch_add(1, std::memory_order_relaxed);
  return RunOpenCollectionCursor(request);
}

// ------------------------------------------------------- admin (live) ---

namespace {

std::future<Status> NotLive() {
  std::promise<Status> refused;
  refused.set_value(Status::InvalidArgument(
      "service does not front a live collection; use the LiveCollection "
      "constructor"));
  return refused.get_future();
}

}  // namespace

std::future<Status> QueryService::SubmitAddDocument(std::string name,
                                                    std::string xml) {
  if (ingest_ == nullptr) return NotLive();
  return ingest_->SubmitAdd(std::move(name), std::move(xml));
}

std::future<Status> QueryService::SubmitReplaceDocument(std::string name,
                                                        std::string xml) {
  if (ingest_ == nullptr) return NotLive();
  return ingest_->SubmitReplace(std::move(name), std::move(xml));
}

std::future<Status> QueryService::SubmitRemoveDocument(std::string name) {
  if (ingest_ == nullptr) return NotLive();
  return ingest_->SubmitRemove(std::move(name));
}

std::future<Status> QueryService::SubmitIngestBatch(
    std::vector<IngestQueue::DocOp> ops) {
  if (ingest_ == nullptr) return NotLive();
  return ingest_->SubmitBatch(std::move(ops));
}

void QueryService::DrainIngest() {
  if (ingest_ != nullptr) ingest_->Drain();
}

void QueryService::RollUp(const ExecStats& stats) {
  elements_.fetch_add(stats.elements, std::memory_order_relaxed);
  page_fetches_.fetch_add(stats.page_fetches, std::memory_order_relaxed);
  page_misses_.fetch_add(stats.page_misses, std::memory_order_relaxed);
  io_reads_.fetch_add(stats.io_reads, std::memory_order_relaxed);
  d_joins_.fetch_add(stats.d_joins, std::memory_order_relaxed);
  intermediate_rows_.fetch_add(stats.intermediate_rows,
                               std::memory_order_relaxed);
  output_rows_.fetch_add(stats.output_rows, std::memory_order_relaxed);
}

Result<QueryResult> QueryService::Run(const QueryRequest& request) {
  Stopwatch watch;
  std::shared_ptr<obs::TraceContext> trace = MaybeStartTrace(request);
  obs::TraceContext::Scope scope(trace.get());
  Result<ResultCursor> cursor = MakeCursor(request, trace.get());
  if (!cursor.ok()) {
    failed_.fetch_add(1, std::memory_order_relaxed);
    return std::move(cursor).status();
  }
  const ExecStats open_stats = cursor->stats();
  QueryResult result;
  {
    obs::SpanTimer span(trace.get(), "drain");
    result = cursor->Drain();
    if (trace != nullptr) {
      span.set_counters(result.stats.elements - open_stats.elements,
                        result.stats.page_fetches - open_stats.page_fetches,
                        result.stats.page_misses - open_stats.page_misses,
                        result.stats.io_reads - open_stats.io_reads);
    }
  }
  completed_.fetch_add(1, std::memory_order_relaxed);
  RollUp(result.stats);
  offset_skipped_.fetch_add(result.offset_skipped, std::memory_order_relaxed);
  result.trace = FinishQueryObs(
      request, watch.ElapsedMillis(), query_latency_ns_, result.stats,
      result.stats.output_rows, EngineName(cursor->engine()), trace.get());
  return result;
}

ServiceStats QueryService::stats() const {
  ServiceStats s;
  s.submitted = submitted_.load(std::memory_order_relaxed);
  s.completed = completed_.load(std::memory_order_relaxed);
  s.failed = failed_.load(std::memory_order_relaxed);
  s.rejected = rejected_.load(std::memory_order_relaxed);
  s.cursors_opened = cursors_opened_.load(std::memory_order_relaxed);
  s.cancelled = cancelled_.load(std::memory_order_relaxed);
  // Only one of the two caches sees traffic (the service fronts either a
  // system or a collection); summing keeps the report uniform.
  PlanCache::Stats cache = plan_cache_.stats();
  CollectionPlanCache::Stats coll_cache = collection_plan_cache_.stats();
  s.plan_cache_hits = cache.hits + coll_cache.hits;
  s.plan_cache_misses = cache.misses + coll_cache.misses;
  s.plan_cache_evictions = cache.evictions + coll_cache.evictions;
  s.doc_plan_hits = doc_plan_hits_.load(std::memory_order_relaxed);
  s.doc_plan_misses = doc_plan_misses_.load(std::memory_order_relaxed);
  s.queries_served_during_churn =
      churn_queries_.load(std::memory_order_relaxed);
  s.docs_executed = docs_executed_.load(std::memory_order_relaxed);
  s.docs_cancelled = docs_cancelled_.load(std::memory_order_relaxed);
  if (live_ != nullptr) {
    LiveCollection::Stats live = live_->stats();
    s.docs_ingested = live.docs_ingested;
    s.docs_removed = live.docs_removed;
    s.epochs_published = live.epochs_published;
    s.manifest_bytes = live.manifest_bytes;
  }
  s.exec.elements = elements_.load(std::memory_order_relaxed);
  s.exec.page_fetches = page_fetches_.load(std::memory_order_relaxed);
  s.exec.page_misses = page_misses_.load(std::memory_order_relaxed);
  s.exec.io_reads = io_reads_.load(std::memory_order_relaxed);
  s.exec.d_joins = d_joins_.load(std::memory_order_relaxed);
  s.exec.intermediate_rows =
      intermediate_rows_.load(std::memory_order_relaxed);
  s.exec.output_rows = output_rows_.load(std::memory_order_relaxed);
  s.exec.offset_skipped = offset_skipped_.load(std::memory_order_relaxed);
  return s;
}

namespace {

/// (name, value) pairs of every ServiceStats field — the single source
/// both exporters walk, so JSON and Prometheus can never disagree on
/// coverage.
std::vector<std::pair<const char*, uint64_t>> ServiceStatsFields(
    const ServiceStats& s) {
  return {
      {"submitted", s.submitted},
      {"completed", s.completed},
      {"failed", s.failed},
      {"rejected", s.rejected},
      {"cursors_opened", s.cursors_opened},
      {"cancelled", s.cancelled},
      {"plan_cache_hits", s.plan_cache_hits},
      {"plan_cache_misses", s.plan_cache_misses},
      {"plan_cache_evictions", s.plan_cache_evictions},
      {"doc_plan_hits", s.doc_plan_hits},
      {"doc_plan_misses", s.doc_plan_misses},
      {"docs_ingested", s.docs_ingested},
      {"docs_removed", s.docs_removed},
      {"epochs_published", s.epochs_published},
      {"manifest_bytes", s.manifest_bytes},
      {"queries_served_during_churn", s.queries_served_during_churn},
      {"docs_executed", s.docs_executed},
      {"docs_cancelled", s.docs_cancelled},
      {"exec_elements", s.exec.elements},
      {"exec_page_fetches", s.exec.page_fetches},
      {"exec_page_misses", s.exec.page_misses},
      {"exec_io_reads", s.exec.io_reads},
      {"exec_d_joins", s.exec.d_joins},
      {"exec_intermediate_rows", s.exec.intermediate_rows},
      {"exec_output_rows", s.exec.output_rows},
      {"exec_offset_skipped", s.exec.offset_skipped},
  };
}

}  // namespace

std::string QueryService::Statsz() const {
  ServiceStats s = stats();
  std::string out = "{\"service\":{";
  bool first = true;
  for (const auto& [name, value] : ServiceStatsFields(s)) {
    AppendF(&out, "%s\"%s\":%" PRIu64, first ? "" : ",", name, value);
    first = false;
  }
  out += "},\"metrics\":";
  out += metrics_.DumpJson();
  out += ",\"process\":";
  out += obs::DefaultRegistry().DumpJson();
  out += "}";
  return out;
}

std::string QueryService::StatszPrometheus() const {
  ServiceStats s = stats();
  std::string out;
  for (const auto& [name, value] : ServiceStatsFields(s)) {
    AppendF(&out, "# TYPE blas_service_%s counter\nblas_service_%s %" PRIu64
                  "\n",
            name, name, value);
  }
  out += metrics_.DumpPrometheus();
  out += obs::DefaultRegistry().DumpPrometheus();
  return out;
}

obs::MetricsSnapshot QueryService::SnapshotMetrics() const {
  obs::MetricsSnapshot snapshot = metrics_.Snapshot();
  snapshot.Merge(obs::DefaultRegistry().Snapshot());
  const ServiceStats s = stats();
  for (const auto& [name, value] : ServiceStatsFields(s)) {
    snapshot.counters[std::string("blas_service_") + name] = value;
  }
  return snapshot;
}

}  // namespace blas

#include "service/query_service.h"

#include <utility>

#include "exec/optimizer.h"
#include "service/normalize.h"

namespace blas {

QueryService::QueryService(const BlasSystem* system,
                           const ServiceOptions& options)
    : system_(system),
      plan_cache_(options.plan_cache_capacity),
      pool_(options.worker_threads, options.queue_capacity) {}

QueryService::QueryService(std::shared_ptr<const BlasSystem> system,
                           const ServiceOptions& options)
    : owned_system_(std::move(system)),
      system_(owned_system_.get()),
      plan_cache_(options.plan_cache_capacity),
      pool_(options.worker_threads, options.queue_capacity) {}

Result<std::unique_ptr<QueryService>> QueryService::FromXml(
    std::string_view xml, const BlasOptions& blas_options,
    const ServiceOptions& options) {
  BLAS_ASSIGN_OR_RETURN(BlasSystem sys, BlasSystem::FromXml(xml, blas_options));
  auto shared = std::make_shared<const BlasSystem>(std::move(sys));
  return std::make_unique<QueryService>(std::move(shared), options);
}

QueryService::~QueryService() { Shutdown(); }

void QueryService::Shutdown() { pool_.Shutdown(); }

template <typename T>
std::future<Result<T>> QueryService::SubmitTask(
    std::function<Result<T>()> work) {
  submitted_.fetch_add(1, std::memory_order_relaxed);
  auto task = std::make_shared<std::packaged_task<Result<T>()>>(
      std::move(work));
  std::future<Result<T>> future = task->get_future();
  if (!pool_.Submit([task] { (*task)(); })) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    std::promise<Result<T>> refused;
    refused.set_value(Status::Unsupported("service is shut down"));
    return refused.get_future();
  }
  return future;
}

std::future<Result<QueryResult>> QueryService::Submit(QueryRequest request) {
  return SubmitTask<QueryResult>(
      [this, request = std::move(request)]() { return Run(request); });
}

std::future<Result<StreamSummary>> QueryService::Submit(
    QueryRequest request, MatchCallback on_match) {
  return SubmitTask<StreamSummary>(
      [this, request = std::move(request),
       on_match = std::move(on_match)]() -> Result<StreamSummary> {
        Result<ResultCursor> cursor = MakeCursor(request);
        if (!cursor.ok()) {
          failed_.fetch_add(1, std::memory_order_relaxed);
          return std::move(cursor).status();
        }
        StreamSummary summary;
        while (std::optional<Match> match = cursor->Next()) {
          ++summary.delivered;
          if (!on_match(*match)) {
            summary.cancelled = true;
            break;
          }
        }
        summary.stats = cursor->stats();
        summary.shape = cursor->shape();
        summary.millis = cursor->millis();
        if (summary.cancelled) {
          // An abandoned scan's truncated stats would skew the
          // per-completed-query roll-up.
          cancelled_.fetch_add(1, std::memory_order_relaxed);
        } else {
          completed_.fetch_add(1, std::memory_order_relaxed);
          RollUp(summary.stats);
        }
        return summary;
      });
}

std::future<Result<ResultCursor>> QueryService::SubmitCursor(
    QueryRequest request) {
  return SubmitTask<ResultCursor>([this, request = std::move(request)]() {
    return RunOpenCursor(request);
  });
}

std::vector<std::future<Result<QueryResult>>> QueryService::SubmitBatch(
    std::vector<QueryRequest> requests) {
  std::vector<std::future<Result<QueryResult>>> futures;
  futures.reserve(requests.size());
  for (QueryRequest& request : requests) {
    futures.push_back(Submit(std::move(request)));
  }
  return futures;
}

Result<QueryResult> QueryService::Execute(const QueryRequest& request) {
  submitted_.fetch_add(1, std::memory_order_relaxed);
  return Run(request);
}

Result<ResultCursor> QueryService::OpenCursor(const QueryRequest& request) {
  submitted_.fetch_add(1, std::memory_order_relaxed);
  return RunOpenCursor(request);
}

Result<ResultCursor> QueryService::RunOpenCursor(const QueryRequest& request) {
  // The cursor escapes the service and executes on the client's thread,
  // so it is tallied as an opened cursor, not a completed query, and its
  // ExecStats stay out of the exec roll-up.
  Result<ResultCursor> cursor = MakeCursor(request);
  if (cursor.ok()) {
    cursors_opened_.fetch_add(1, std::memory_order_relaxed);
  } else {
    failed_.fetch_add(1, std::memory_order_relaxed);
  }
  return cursor;
}

Result<ResultCursor> QueryService::MakeCursor(const QueryRequest& request) {
  std::shared_ptr<const CachedPlan> plan;
  std::string key;
  const QueryOptions& options = request.options;
  const bool use_cache =
      !request.bypass_plan_cache && plan_cache_.capacity() > 0;
  if (use_cache) {
    key = PlanCacheKey(request.xpath, options.translator,
                       options.exec.optimize_join_order);
    plan = plan_cache_.Get(key);
  }
  if (plan == nullptr) {
    Result<ExecPlan> planned = system_->Plan(request.xpath, options.translator);
    if (!planned.ok()) return std::move(planned).status();
    CachedPlan fresh;
    fresh.plan = std::move(planned).value();
    CostModel model(&system_->summary(), &system_->dict());
    if (options.exec.optimize_join_order) {
      fresh.plan = OptimizeJoinOrder(fresh.plan, model);
    }
    if (use_cache || options.engine == Engine::kAuto) {
      // Skippable when the engine is pinned and the plan won't be cached
      // (cardinality estimation walks the path summary per part).
      fresh.auto_engine = ChooseEngine(fresh.plan, model);
    }
    if (use_cache || options.limit > 0) {
      // Same reasoning as auto_engine: skip the summary walks when the
      // verdict can neither be cached nor used (unbounded request).
      fresh.stream_info = system_->AnalyzeStreamability(fresh.plan);
    }
    plan = std::make_shared<const CachedPlan>(std::move(fresh));
    if (use_cache) plan_cache_.Put(key, plan);
  }

  Engine engine =
      options.engine == Engine::kAuto ? plan->auto_engine : options.engine;
  // Alias the cached entry so the plan outlives any eviction while this
  // cursor is still streaming.
  std::shared_ptr<const ExecPlan> shared_plan(plan, &plan->plan);
  return system_->OpenPlan(std::move(shared_plan), engine, options,
                           &plan->stream_info);
}

void QueryService::RollUp(const ExecStats& stats) {
  elements_.fetch_add(stats.elements, std::memory_order_relaxed);
  page_fetches_.fetch_add(stats.page_fetches, std::memory_order_relaxed);
  page_misses_.fetch_add(stats.page_misses, std::memory_order_relaxed);
  d_joins_.fetch_add(stats.d_joins, std::memory_order_relaxed);
  intermediate_rows_.fetch_add(stats.intermediate_rows,
                               std::memory_order_relaxed);
  output_rows_.fetch_add(stats.output_rows, std::memory_order_relaxed);
}

Result<QueryResult> QueryService::Run(const QueryRequest& request) {
  Result<ResultCursor> cursor = MakeCursor(request);
  if (!cursor.ok()) {
    failed_.fetch_add(1, std::memory_order_relaxed);
    return std::move(cursor).status();
  }
  QueryResult result = cursor->Drain();
  completed_.fetch_add(1, std::memory_order_relaxed);
  RollUp(result.stats);
  return result;
}

ServiceStats QueryService::stats() const {
  ServiceStats s;
  s.submitted = submitted_.load(std::memory_order_relaxed);
  s.completed = completed_.load(std::memory_order_relaxed);
  s.failed = failed_.load(std::memory_order_relaxed);
  s.rejected = rejected_.load(std::memory_order_relaxed);
  s.cursors_opened = cursors_opened_.load(std::memory_order_relaxed);
  s.cancelled = cancelled_.load(std::memory_order_relaxed);
  PlanCache::Stats cache = plan_cache_.stats();
  s.plan_cache_hits = cache.hits;
  s.plan_cache_misses = cache.misses;
  s.plan_cache_evictions = cache.evictions;
  s.exec.elements = elements_.load(std::memory_order_relaxed);
  s.exec.page_fetches = page_fetches_.load(std::memory_order_relaxed);
  s.exec.page_misses = page_misses_.load(std::memory_order_relaxed);
  s.exec.d_joins = d_joins_.load(std::memory_order_relaxed);
  s.exec.intermediate_rows =
      intermediate_rows_.load(std::memory_order_relaxed);
  s.exec.output_rows = output_rows_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace blas

#ifndef BLAS_SERVICE_QUERY_SERVICE_H_
#define BLAS_SERVICE_QUERY_SERVICE_H_

#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include "blas/blas.h"
#include "service/plan_cache.h"
#include "service/thread_pool.h"

namespace blas {

/// Construction options for QueryService.
struct ServiceOptions {
  /// Worker threads executing queries. 0 means hardware concurrency.
  size_t worker_threads = 4;
  /// Bounded submission queue; Submit blocks (backpressure) when full.
  size_t queue_capacity = 1024;
  /// LRU entries of the plan cache. 0 disables caching entirely.
  size_t plan_cache_capacity = 256;
};

/// One client request: an XPath query plus per-query knobs.
struct QueryRequest {
  std::string xpath;
  Translator translator = Translator::kPushUp;
  /// kAuto lets the optimizer pick relational vs. twig per plan.
  Engine engine = Engine::kAuto;
  ExecOptions exec;
  /// Skip the plan cache for this request (both lookup and insert).
  bool bypass_plan_cache = false;
};

/// Service-wide counters. Values are monotonically increasing since
/// construction; `stats()` returns a consistent-enough snapshot (each
/// field is read atomically, the set is not fenced).
struct ServiceStats {
  uint64_t submitted = 0;
  uint64_t completed = 0;  // successful queries
  uint64_t failed = 0;     // parse/translate/execute errors
  uint64_t rejected = 0;   // submissions refused after Shutdown
  // Plan-cache accounting (mirrors PlanCache::stats()).
  uint64_t plan_cache_hits = 0;
  uint64_t plan_cache_misses = 0;
  uint64_t plan_cache_evictions = 0;
  // Roll-up of every completed query's ExecStats. All fields widened to
  // uint64 (ExecStats::d_joins is an int sized for one query, not for a
  // service lifetime).
  struct ExecRollup {
    uint64_t elements = 0;
    uint64_t page_fetches = 0;
    uint64_t page_misses = 0;
    uint64_t d_joins = 0;
    uint64_t intermediate_rows = 0;
    uint64_t output_rows = 0;
  };
  ExecRollup exec;
};

/// \brief Concurrent query front door over one indexed document.
///
/// Owns (or borrows) a BlasSystem and serves XPath queries from many
/// clients at once: requests enter a bounded queue, a fixed pool of
/// workers translates and executes them against the shared NodeStore
/// (safe for concurrent readers), and results come back through futures.
/// Repeat queries hit an LRU plan cache keyed by normalized query text
/// and skip the whole parse/decompose/translate/optimize pipeline.
///
/// \code
///   QueryService service(&sys, {.worker_threads = 4});
///   auto f1 = service.Submit({.xpath = "/site/regions//item"});
///   auto f2 = service.Submit({.xpath = "//person[name]"});
///   Result<QueryResult> r1 = f1.get();
/// \endcode
class QueryService {
 public:
  /// Serves queries against a system owned by the caller, which must
  /// outlive the service.
  explicit QueryService(const BlasSystem* system,
                        const ServiceOptions& options = {});
  /// Shares ownership of the system.
  explicit QueryService(std::shared_ptr<const BlasSystem> system,
                        const ServiceOptions& options = {});
  /// Builds the system from XML text and owns it.
  static Result<std::unique_ptr<QueryService>> FromXml(
      std::string_view xml, const BlasOptions& blas_options = {},
      const ServiceOptions& options = {});

  ~QueryService();

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  /// Enqueues one query; blocks only when the submission queue is full.
  /// After Shutdown the returned future holds a kUnsupported error.
  std::future<Result<QueryResult>> Submit(QueryRequest request);

  /// Enqueues a batch; futures are in request order.
  std::vector<std::future<Result<QueryResult>>> SubmitBatch(
      std::vector<QueryRequest> requests);

  /// Runs one query on the calling thread (same plan cache and stats).
  Result<QueryResult> Execute(const QueryRequest& request);

  /// Stops accepting work, drains queued queries, joins the workers.
  void Shutdown();

  ServiceStats stats() const;
  const PlanCache& plan_cache() const { return plan_cache_; }
  const BlasSystem& system() const { return *system_; }
  size_t worker_threads() const { return pool_.thread_count(); }

 private:
  Result<QueryResult> Run(const QueryRequest& request);

  std::shared_ptr<const BlasSystem> owned_system_;
  const BlasSystem* system_;
  PlanCache plan_cache_;
  ThreadPool pool_;

  std::atomic<uint64_t> submitted_{0};
  std::atomic<uint64_t> completed_{0};
  std::atomic<uint64_t> failed_{0};
  std::atomic<uint64_t> rejected_{0};
  std::atomic<uint64_t> elements_{0};
  std::atomic<uint64_t> page_fetches_{0};
  std::atomic<uint64_t> page_misses_{0};
  std::atomic<uint64_t> d_joins_{0};
  std::atomic<uint64_t> intermediate_rows_{0};
  std::atomic<uint64_t> output_rows_{0};
};

}  // namespace blas

#endif  // BLAS_SERVICE_QUERY_SERVICE_H_

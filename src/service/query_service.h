#ifndef BLAS_SERVICE_QUERY_SERVICE_H_
#define BLAS_SERVICE_QUERY_SERVICE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include "blas/blas.h"
#include "blas/collection.h"
#include "ingest/ingest_queue.h"
#include "ingest/live_collection.h"
#include "obs/metrics.h"
#include "obs/slow_query_log.h"
#include "obs/trace.h"
#include "service/plan_cache.h"
#include "service/thread_pool.h"

namespace blas {

/// Construction options for QueryService.
struct ServiceOptions {
  /// Worker threads executing queries. 0 means hardware concurrency.
  size_t worker_threads = 4;
  /// Bounded submission queue; Submit blocks (backpressure) when full.
  size_t queue_capacity = 1024;
  /// LRU entries of the plan cache. 0 disables caching entirely.
  size_t plan_cache_capacity = 256;
  /// Bounded per-document match queue of collection scatter-gather
  /// cursors (see BlasCollection::ScatterOptions::queue_capacity).
  size_t scatter_queue_capacity = 256;
  /// Trace every Nth completed query in addition to explicit
  /// QueryOptions::trace requests (1 = every query, 0 = explicit only).
  /// Finished traces land in recent_traces().
  size_t trace_sample_every = 0;
  /// Finished traces kept for recent_traces() (oldest evicted first).
  size_t trace_ring_capacity = 32;
  /// Completed queries slower than this (wall milliseconds) land in the
  /// slow-query log with their per-stage breakdown; <= 0 disables it.
  double slow_query_millis = 0.0;
  /// Most recent slow-query entries kept.
  size_t slow_query_log_capacity = 64;
};

/// One client request: an XPath query plus the unified per-query knobs
/// (translator, engine, exec, limit/offset, projection).
struct QueryRequest {
  std::string xpath;
  QueryOptions options;
  /// Skip the plan cache for this request (both lookup and insert).
  bool bypass_plan_cache = false;
};

/// Final measurements of a streamed (callback) query.
struct StreamSummary {
  ExecStats stats;
  ExecPlan::Shape shape;
  double millis = 0.0;
  /// Matches handed to the callback.
  uint64_t delivered = 0;
  /// True when the callback stopped the stream early.
  bool cancelled = false;
};

/// Service-wide counters. Values are monotonically increasing since
/// construction; `stats()` returns a consistent-enough snapshot (each
/// field is read atomically, the set is not fenced).
struct ServiceStats {
  uint64_t submitted = 0;
  uint64_t completed = 0;  // queries run to completion by the service
  uint64_t failed = 0;     // parse/translate/execute errors
  uint64_t rejected = 0;   // submissions refused after Shutdown
  /// Cursors handed out via SubmitCursor/OpenCursor. Counted separately
  /// from `completed`: an escaped cursor executes on the client's thread,
  /// so its ExecStats never enter the `exec` roll-up below and must not
  /// dilute per-completed-query averages.
  uint64_t cursors_opened = 0;
  /// Streaming submissions whose callback cancelled mid-stream. Counted
  /// separately from `completed` for the same reason: their truncated
  /// ExecStats stay out of the exec roll-up.
  uint64_t cancelled = 0;
  // Plan-cache accounting (mirrors PlanCache::stats(); for a
  // collection-backed service these come from the collection plan cache).
  uint64_t plan_cache_hits = 0;
  uint64_t plan_cache_misses = 0;
  uint64_t plan_cache_evictions = 0;
  /// Per-document plan reuse inside cached collection entries: a hot
  /// collection query pays one parse plus one translation per document
  /// (doc_plan_misses), then only doc_plan_hits. An epoch-mismatched
  /// lookup (the document was replaced since the plan was translated)
  /// counts as a miss — stale plans are structurally unservable.
  uint64_t doc_plan_hits = 0;
  uint64_t doc_plan_misses = 0;
  // Churn counters (live-collection services; all 0 otherwise).
  /// Documents published by SubmitAdd/ReplaceDocument — or by anything
  /// else driving the same LiveCollection.
  uint64_t docs_ingested = 0;
  uint64_t docs_removed = 0;
  /// Epoch publishes on the fronted live collection since it opened.
  uint64_t epochs_published = 0;
  /// Current durable manifest size in bytes.
  uint64_t manifest_bytes = 0;
  /// Completed collection queries that overlapped at least one publish:
  /// the epoch they pinned was superseded by the time they drained. The
  /// headline number of the live-ingestion design — readers kept
  /// streaming while the data changed under them.
  uint64_t queries_served_during_churn = 0;
  /// Scatter-side collection accounting, summed over completed collection
  /// queries (see CollectionCursor::ScatterStats): documents whose
  /// per-document cursor actually ran, and documents cancelled while
  /// still queued because the limit budget was already spent.
  uint64_t docs_executed = 0;
  uint64_t docs_cancelled = 0;
  // Roll-up of every completed query's ExecStats.
  struct ExecRollup {
    uint64_t elements = 0;
    uint64_t page_fetches = 0;
    uint64_t page_misses = 0;
    /// Real disk reads (demand-paged documents; 0 for in-memory).
    uint64_t io_reads = 0;
    uint64_t d_joins = 0;
    uint64_t intermediate_rows = 0;
    uint64_t output_rows = 0;
    /// Matches consumed by `offset` before the first delivered one,
    /// summed over completed queries (single-document and collection).
    uint64_t offset_skipped = 0;
  };
  ExecRollup exec;
};

/// \brief Concurrent query front door over one indexed document or a
/// whole document collection.
///
/// Owns (or borrows) a BlasSystem — or borrows a BlasCollection — and
/// serves XPath queries from many clients at once: requests enter a
/// bounded queue, a fixed pool of workers translates and executes them
/// against the shared read path (safe for concurrent readers), and
/// results come back through futures. Repeat queries hit an LRU plan
/// cache keyed by normalized query text and skip the whole
/// parse/decompose/translate/optimize pipeline; collection entries cache
/// the parsed query once plus one translated plan per document.
///
/// Collection submissions scatter per-document cursors across the same
/// worker pool and gather them through a merge cursor (see
/// BlasCollection::OpenCursor), so one collection query can occupy
/// several workers while bounded queues cap its memory.
///
/// \code
///   QueryService service(&sys, {.worker_threads = 4});
///   auto f1 = service.Submit({.xpath = "/site/regions//item"});
///   auto f2 = service.Submit({.xpath = "//person[name]"});
///   Result<QueryResult> r1 = f1.get();
/// \endcode
class QueryService {
 public:
  /// Serves queries against a system owned by the caller, which must
  /// outlive the service.
  explicit QueryService(const BlasSystem* system,
                        const ServiceOptions& options = {});
  /// Shares ownership of the system.
  explicit QueryService(std::shared_ptr<const BlasSystem> system,
                        const ServiceOptions& options = {});
  /// Serves collection queries against a collection owned by the caller,
  /// which must outlive the service and stay unmodified while served.
  explicit QueryService(const BlasCollection* collection,
                        const ServiceOptions& options = {});
  /// Serves collection queries against a live (continuously-ingesting)
  /// collection owned by the caller, which must outlive the service.
  /// Every query pins the epoch current at its open and drains it to the
  /// end regardless of concurrent publishes; the admin Submit*Document
  /// methods below feed the same worker pool. The service installs
  /// itself as the collection's change listener (per-document plan
  /// invalidation) — don't overwrite it while the service is alive.
  explicit QueryService(LiveCollection* live,
                        const ServiceOptions& options = {});
  /// Builds the system from XML text and owns it.
  static Result<std::unique_ptr<QueryService>> FromXml(
      std::string_view xml, const BlasOptions& blas_options = {},
      const ServiceOptions& options = {});

  ~QueryService();

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  /// Per-match delivery callback of the streaming Submit overload. Return
  /// false to cancel the stream. For bounded requests (limit > 0) the
  /// incremental producer then abandons its remaining scans; an unbounded
  /// request has already materialized the full result by the time the
  /// first match is delivered, so cancelling only stops delivery.
  using MatchCallback = std::function<bool(const Match&)>;
  /// Collection flavor: the match plus its owning document's name.
  /// Cancelling additionally cancels still-queued documents.
  using CollectionMatchCallback = std::function<bool(const CollectionMatch&)>;

  /// Enqueues one query; blocks only when the submission queue is full.
  /// After Shutdown the returned future holds a kUnsupported error.
  std::future<Result<QueryResult>> Submit(QueryRequest request);

  /// Streaming overload: a worker opens a cursor and pushes each match
  /// into `on_match` as it is produced (bounded requests terminate their
  /// scans early); the future completes with the final measurements. The
  /// callback runs on the worker thread and must be thread-compatible
  /// with the caller.
  std::future<Result<StreamSummary>> Submit(QueryRequest request,
                                            MatchCallback on_match);

  /// Cursor overload: the worker runs the setup phase (parse / plan cache
  /// / translate / streaming prefix) and hands the cursor back through the
  /// future; the caller then pulls matches on its own thread. The cursor
  /// borrows the service's system and must not outlive it.
  std::future<Result<ResultCursor>> SubmitCursor(QueryRequest request);

  /// Enqueues a batch; futures are in request order.
  std::vector<std::future<Result<QueryResult>>> SubmitBatch(
      std::vector<QueryRequest> requests);

  /// Runs one query on the calling thread (same plan cache and stats).
  Result<QueryResult> Execute(const QueryRequest& request);

  /// Opens a cursor on the calling thread (same plan cache and stats).
  Result<ResultCursor> OpenCursor(const QueryRequest& request);

  // ------------------------------------------ collection front door ---
  // These require the collection constructor; on a single-document
  // service they fail with InvalidArgument (and vice versa for the
  // single-document methods on a collection service).

  /// Enqueues one collection-wide query: a worker runs the merge while
  /// per-document producers scatter across the same pool.
  std::future<Result<BlasCollection::CollectionResult>> SubmitCollection(
      QueryRequest request);

  /// Streaming overload: matches arrive in (document name, doc order)
  /// through `on_match` on a worker thread.
  std::future<Result<StreamSummary>> SubmitCollection(
      QueryRequest request, CollectionMatchCallback on_match);

  /// Cursor overload: the worker opens the scatter-gather cursor (plan
  /// cache, producer fan-out) and hands it back; the caller pulls the
  /// merged stream on its own thread. The cursor borrows the service's
  /// collection and pool and must not outlive the service.
  std::future<Result<CollectionCursor>> SubmitCollectionCursor(
      QueryRequest request);

  /// Runs one collection query on the calling thread (the merge runs
  /// here; producers still scatter onto the worker pool).
  Result<BlasCollection::CollectionResult> ExecuteCollection(
      const QueryRequest& request);

  /// Opens a scatter-gather cursor on the calling thread.
  Result<CollectionCursor> OpenCollectionCursor(const QueryRequest& request);

  // --------------------------------------------------- admin (live) ---
  // Document mutations on a live-collection service. Each runs the full
  // ingestion pipeline (parse -> label -> paged snapshot -> durable
  // publish) on a worker thread and settles the future with the publish
  // outcome. On a non-live service the future holds InvalidArgument.

  std::future<Status> SubmitAddDocument(std::string name, std::string xml);
  std::future<Status> SubmitReplaceDocument(std::string name,
                                            std::string xml);
  std::future<Status> SubmitRemoveDocument(std::string name);
  /// Publishes the whole batch as one epoch (one manifest record).
  std::future<Status> SubmitIngestBatch(std::vector<IngestQueue::DocOp> ops);
  /// Blocks until every admin submission so far has published or failed.
  void DrainIngest();

  /// Stops accepting work, drains queued queries, joins the workers.
  void Shutdown();

  ServiceStats stats() const;

  // ---------------------------------------------------- observability ---

  /// Machine-readable status page: one JSON object with the ServiceStats
  /// counters ("service"), this service's metric registry ("metrics" —
  /// query/stage latency histograms with percentiles) and the
  /// process-wide registry ("process" — storage + ingest metrics).
  std::string Statsz() const;

  /// Prometheus text exposition (format 0.0.4) of the same three groups;
  /// ServiceStats counters are exported as `blas_service_*`.
  std::string StatszPrometheus() const;

  /// Cumulative snapshot of the same three groups for the windowed layer
  /// (obs/snapshot.h): this service's registry merged with the process
  /// registry, plus every ServiceStats counter as `blas_service_*`. This
  /// is the capture callback a MetricsSnapshotter should ring — two of
  /// these subtract into an exact per-window view.
  obs::MetricsSnapshot SnapshotMetrics() const;

  /// This service's metric registry (query latency, per-stage latency,
  /// plan-cache gauges). Stable pointers; safe to read concurrently.
  const obs::MetricsRegistry& metrics() const { return metrics_; }
  obs::MetricsRegistry& metrics() { return metrics_; }

  /// Recently finished traces, oldest first (sampled via
  /// ServiceOptions::trace_sample_every or requested via
  /// QueryOptions::trace).
  std::vector<std::shared_ptr<const obs::Trace>> recent_traces() const {
    return trace_ring_.Recent();
  }
  const obs::TraceRing& trace_ring() const { return trace_ring_; }
  const obs::SlowQueryLog& slow_query_log() const { return slow_query_log_; }

  const PlanCache& plan_cache() const { return plan_cache_; }
  const CollectionPlanCache& collection_plan_cache() const {
    return collection_plan_cache_;
  }
  /// Non-null only for the single-document constructors.
  const BlasSystem* system() const { return system_; }
  /// Non-null only for the collection constructor.
  const BlasCollection* collection() const { return collection_; }
  /// Non-null only for the live-collection constructor.
  LiveCollection* live() const { return live_; }
  size_t worker_threads() const { return pool_.thread_count(); }

 private:
  Result<QueryResult> Run(const QueryRequest& request);
  /// OpenCursor without the submission count (SubmitCursor counts in
  /// SubmitTask).
  Result<ResultCursor> RunOpenCursor(const QueryRequest& request);
  /// Shared front half of every single-document path: plan-cache lookup /
  /// translation, engine resolution, cursor creation. With a non-null
  /// `trace` each stage (plan_cache / parse / translate / optimize /
  /// execute) records a span.
  Result<ResultCursor> MakeCursor(const QueryRequest& request,
                                  obs::TraceContext* trace = nullptr);
  /// Collection counterpart: collection plan-cache lookup (parsed query +
  /// per-document plans), scatter-gather cursor creation over the pool.
  /// On a live service the cursor is opened over the pinned current
  /// snapshot; `epoch_at_open` (optional) receives its epoch. `trace` is
  /// shared because the per-document opener reports spans from scatter
  /// workers that may outlive this call's frame.
  Result<CollectionCursor> MakeCollectionCursor(
      const QueryRequest& request, uint64_t* epoch_at_open = nullptr,
      std::shared_ptr<obs::TraceContext> trace = nullptr);
  /// Counts a completed live-collection query that overlapped a publish.
  void CountChurnOverlap(uint64_t epoch_at_open);
  Result<BlasCollection::CollectionResult> RunCollection(
      const QueryRequest& request);
  Result<CollectionCursor> RunOpenCollectionCursor(
      const QueryRequest& request);
  void RollUp(const ExecStats& stats);

  /// Registers this service's metrics (latency histograms, plan-cache
  /// gauges). Called from every constructor.
  void InitMetrics();
  /// A new trace context when this query is traced (explicit
  /// QueryOptions::trace or every-Nth sampling); null otherwise.
  std::shared_ptr<obs::TraceContext> MaybeStartTrace(
      const QueryRequest& request);
  /// Completion hook of every non-cancelled query: records the latency
  /// histogram, seals + rings the trace (when any) and feeds the
  /// slow-query log. Returns the sealed trace (null when untraced).
  std::shared_ptr<const obs::Trace> FinishQueryObs(
      const QueryRequest& request, double millis, obs::Histogram* latency,
      const ExecStats& stats, uint64_t output_rows, const char* engine,
      obs::TraceContext* trace);

  template <typename T>
  std::future<Result<T>> SubmitTask(
      std::function<Result<T>()> work);

  std::shared_ptr<const BlasSystem> owned_system_;
  const BlasSystem* system_ = nullptr;
  const BlasCollection* collection_ = nullptr;
  LiveCollection* live_ = nullptr;
  PlanCache plan_cache_;
  CollectionPlanCache collection_plan_cache_;
  size_t scatter_queue_capacity_;
  /// Declared before pool_: the pool's shutdown (which runs queued
  /// ingest tasks) must happen while the queue still exists.
  std::unique_ptr<IngestQueue> ingest_;
  ThreadPool pool_;

  // Observability state. The registry member keeps metric pointers stable
  // for the service's lifetime; InitMetrics caches the hot ones below.
  obs::MetricsRegistry metrics_;
  obs::TraceRing trace_ring_;
  obs::SlowQueryLog slow_query_log_;
  const size_t trace_sample_every_;
  std::atomic<uint64_t> trace_ticker_{0};
  obs::Histogram* query_latency_ns_ = nullptr;
  obs::Histogram* collection_latency_ns_ = nullptr;
  obs::Histogram* stage_parse_ns_ = nullptr;
  obs::Histogram* stage_translate_ns_ = nullptr;
  obs::Histogram* stage_optimize_ns_ = nullptr;
  obs::Histogram* stage_execute_ns_ = nullptr;

  std::atomic<uint64_t> submitted_{0};
  std::atomic<uint64_t> completed_{0};
  std::atomic<uint64_t> failed_{0};
  std::atomic<uint64_t> rejected_{0};
  std::atomic<uint64_t> cursors_opened_{0};
  std::atomic<uint64_t> cancelled_{0};
  std::atomic<uint64_t> doc_plan_hits_{0};
  std::atomic<uint64_t> doc_plan_misses_{0};
  std::atomic<uint64_t> churn_queries_{0};
  std::atomic<uint64_t> docs_executed_{0};
  std::atomic<uint64_t> docs_cancelled_{0};
  std::atomic<uint64_t> elements_{0};
  std::atomic<uint64_t> page_fetches_{0};
  std::atomic<uint64_t> page_misses_{0};
  std::atomic<uint64_t> io_reads_{0};
  std::atomic<uint64_t> d_joins_{0};
  std::atomic<uint64_t> intermediate_rows_{0};
  std::atomic<uint64_t> output_rows_{0};
  std::atomic<uint64_t> offset_skipped_{0};
};

}  // namespace blas

#endif  // BLAS_SERVICE_QUERY_SERVICE_H_

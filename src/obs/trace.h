#ifndef BLAS_OBS_TRACE_H_
#define BLAS_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "common/thread_annotations.h"


namespace blas {
namespace obs {

/// One timed stage of a query's life. Spans form a tree: `depth` is the
/// nesting level at the recording site (0 = top-level stage) and
/// `start_ns` orders siblings; a span's children are the deeper spans
/// whose start falls inside its [start, start + duration) window.
struct TraceSpan {
  std::string name;
  /// Free-form detail: plan-cache hit/miss, translator, engine, document.
  std::string note;
  int depth = 0;
  /// Nanoseconds since the trace started.
  uint64_t start_ns = 0;
  uint64_t duration_ns = 0;
  // Counter deltas attributed to this stage (ExecStats/ReadCounters
  // vocabulary; all 0 for stages that do not touch storage).
  uint64_t elements = 0;
  uint64_t page_fetches = 0;
  uint64_t page_misses = 0;
  uint64_t io_reads = 0;
};

/// A finished trace: the span tree of one sampled (or explicitly
/// requested) query. Immutable once published.
struct Trace {
  /// Normalized query text.
  std::string label;
  /// Total wall time from TraceContext construction to Finish().
  uint64_t total_ns = 0;
  /// Wall-clock start (system_clock, ms since epoch) for log correlation.
  int64_t started_unix_ms = 0;
  std::vector<TraceSpan> spans;

  /// Human-readable tree: spans sorted by start, indented by depth, with
  /// per-stage wall time and counters.
  std::string Render() const;
};

/// \brief Collects the spans of one query while it executes.
///
/// The service creates one per traced query, installs it as the calling
/// thread's current context (see Scope) so deep layers can attribute
/// work to it — the buffer pool adds every real page read's latency —
/// and Finish()es it into an immutable Trace. AddSpan is internally
/// synchronized: collection scatter workers report spans concurrently.
class TraceContext {
 public:
  explicit TraceContext(std::string label);

  TraceContext(const TraceContext&) = delete;
  TraceContext& operator=(const TraceContext&) = delete;

  /// Nanoseconds since this context was created (span timestamps).
  uint64_t ElapsedNanos() const;

  /// Appends a completed span (thread-safe).
  void AddSpan(TraceSpan span);

  /// Storage-layer hook: one real page read (pread) took `ns`. Aggregated
  /// into a single synthetic "page_io" span at Finish — per-read spans
  /// would swamp the trace on cold scans.
  void RecordPageRead(uint64_t ns);

  /// Seals the trace: emits the aggregated page_io span (when any reads
  /// happened), stamps the total, sorts spans by (start, depth) and
  /// returns the immutable result. Call once.
  std::shared_ptr<const Trace> Finish();

  /// \brief RAII installer of the thread-local current context. Accepts
  /// nullptr (no-op) so untraced paths pay one TLS store only.
  class Scope {
   public:
    explicit Scope(TraceContext* context);
    ~Scope();
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    TraceContext* prev_;
  };

  /// The innermost context installed on this thread, or nullptr.
  static TraceContext* Current();

 private:
  const std::chrono::steady_clock::time_point start_;
  const int64_t started_unix_ms_;

  Mutex mu_;
  std::string label_ BLAS_GUARDED_BY(mu_);
  std::vector<TraceSpan> spans_ BLAS_GUARDED_BY(mu_);

  std::atomic<uint64_t> page_reads_{0};
  std::atomic<uint64_t> page_read_ns_{0};
  /// start_ns of the first pread (UINT64_MAX until one happens).
  std::atomic<uint64_t> first_read_ns_{UINT64_MAX};
};

/// \brief Times one stage and records it into a context on destruction.
///
/// Null-safe: with a null context the constructor and destructor do
/// nothing (no clock reads, no string construction — `name` must be a
/// literal or otherwise outlive the timer), so call sites stay
/// unconditional. Nesting depth is tracked per thread — a SpanTimer
/// created while another is live on the same thread records depth + 1.
class SpanTimer {
 public:
  SpanTimer(TraceContext* context, const char* name);
  ~SpanTimer();

  SpanTimer(const SpanTimer&) = delete;
  SpanTimer& operator=(const SpanTimer&) = delete;

  /// Attaches free-form detail (engine picked, cache verdict, doc name).
  void set_note(std::string note) { span_.note = std::move(note); }
  /// Attributes counter deltas to this stage.
  void set_counters(uint64_t elements, uint64_t page_fetches,
                    uint64_t page_misses, uint64_t io_reads);

 private:
  TraceContext* context_;
  TraceSpan span_;
};

/// \brief Bounded, thread-safe ring of the most recent traces.
class TraceRing {
 public:
  explicit TraceRing(size_t capacity) : capacity_(capacity) {}

  void Push(std::shared_ptr<const Trace> trace);
  /// Oldest first.
  std::vector<std::shared_ptr<const Trace>> Recent() const;
  size_t capacity() const { return capacity_; }
  /// Traces pushed over the ring's lifetime (including evicted ones).
  uint64_t total_pushed() const;

 private:
  const size_t capacity_;
  mutable Mutex mu_;
  std::deque<std::shared_ptr<const Trace>> ring_ BLAS_GUARDED_BY(mu_);
  uint64_t pushed_ BLAS_GUARDED_BY(mu_) = 0;
};

}  // namespace obs
}  // namespace blas

#endif  // BLAS_OBS_TRACE_H_

#include "obs/snapshot.h"

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>

namespace blas {
namespace obs {

// -------------------------------------------------- histogram snapshot ---

void HistogramSnapshot::Merge(const HistogramSnapshot& other) {
  std::vector<std::pair<uint32_t, uint64_t>> merged;
  merged.reserve(buckets.size() + other.buckets.size());
  size_t i = 0, j = 0;
  while (i < buckets.size() || j < other.buckets.size()) {
    if (j >= other.buckets.size() ||
        (i < buckets.size() && buckets[i].first < other.buckets[j].first)) {
      merged.push_back(buckets[i++]);
    } else if (i >= buckets.size() ||
               buckets[i].first > other.buckets[j].first) {
      merged.push_back(other.buckets[j++]);
    } else {
      merged.emplace_back(buckets[i].first,
                          buckets[i].second + other.buckets[j].second);
      ++i;
      ++j;
    }
  }
  buckets = std::move(merged);
  count += other.count;
  sum += other.sum;
  max = std::max(max, other.max);
}

HistogramSnapshot HistogramSnapshot::Subtract(
    const HistogramSnapshot& earlier) const {
  HistogramSnapshot delta;
  delta.buckets.reserve(buckets.size());
  size_t j = 0;
  for (const auto& [index, value] : buckets) {
    while (j < earlier.buckets.size() && earlier.buckets[j].first < index) {
      ++j;
    }
    uint64_t base = 0;
    if (j < earlier.buckets.size() && earlier.buckets[j].first == index) {
      base = earlier.buckets[j].second;
    }
    if (value > base) {
      delta.buckets.emplace_back(index, value - base);
      delta.count += value - base;
    }
  }
  delta.sum = sum > earlier.sum ? sum - earlier.sum : 0;
  delta.max = max;
  return delta;
}

uint64_t HistogramSnapshot::ValueAtQuantile(double q) const {
  if (count == 0) return 0;
  q = std::min(std::max(q, 0.0), 1.0);
  // Nearest-rank, 1-based — identical to Histogram::ValueAtQuantile so a
  // windowed percentile and a lifetime percentile are directly comparable.
  uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(count));
  if (rank < 1) rank = 1;
  if (rank > count) rank = count;
  uint64_t seen = 0;
  for (const auto& [index, value] : buckets) {
    seen += value;
    if (seen >= rank) {
      const uint64_t lo = Histogram::BucketLo(index);
      const uint64_t hi = Histogram::BucketHi(index);
      return hi == UINT64_MAX ? lo : lo + (hi - lo) / 2;
    }
  }
  return buckets.empty() ? 0 : Histogram::BucketLo(buckets.back().first);
}

// ---------------------------------------------------- metrics snapshot ---

void MetricsSnapshot::Merge(const MetricsSnapshot& other) {
  for (const auto& [name, value] : other.counters) counters[name] += value;
  for (const auto& [name, value] : other.gauges) {
    gauges.emplace(name, value);  // keep ours on collision
  }
  for (const auto& [name, hist] : other.histograms) {
    histograms[name].Merge(hist);
  }
}

MetricsSnapshot MetricsSnapshot::Subtract(
    const MetricsSnapshot& earlier) const {
  MetricsSnapshot delta;
  delta.captured_mono_ns = captured_mono_ns;
  delta.captured_unix_ms = captured_unix_ms;
  for (const auto& [name, value] : counters) {
    auto it = earlier.counters.find(name);
    const uint64_t base = it == earlier.counters.end() ? 0 : it->second;
    delta.counters[name] = value > base ? value - base : 0;
  }
  delta.gauges = gauges;
  for (const auto& [name, hist] : histograms) {
    auto it = earlier.histograms.find(name);
    delta.histograms[name] = it == earlier.histograms.end()
                                 ? hist
                                 : hist.Subtract(it->second);
  }
  return delta;
}

// ------------------------------------------------- registry -> snapshot ---

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snap;
  snap.captured_mono_ns = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
  snap.captured_unix_ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count();
  MutexLock lock(mu_);
  for (const auto& [name, entry] : entries_) {
    switch (entry.kind) {
      case Entry::Kind::kCounter:
        snap.counters[name] = entry.counter->value();
        break;
      case Entry::Kind::kGauge:
        snap.gauges[name] = entry.gauge->value();
        break;
      case Entry::Kind::kCallbackGauge:
        snap.gauges[name] = entry.callback ? entry.callback() : 0;
        break;
      case Entry::Kind::kHistogram: {
        HistogramSnapshot hist;
        const std::array<uint64_t, Histogram::kBuckets> dense =
            entry.histogram->Snapshot();
        for (size_t i = 0; i < Histogram::kBuckets; ++i) {
          if (dense[i] == 0) continue;
          hist.buckets.emplace_back(static_cast<uint32_t>(i), dense[i]);
          hist.count += dense[i];
        }
        hist.sum = entry.histogram->sum();
        hist.max = entry.histogram->max_recorded();
        snap.histograms[name] = std::move(hist);
        break;
      }
    }
  }
  return snap;
}

// ----------------------------------------------------------- snapshotter ---

MetricsSnapshotter::MetricsSnapshotter(
    std::function<MetricsSnapshot()> capture, Options options)
    : capture_(std::move(capture)), options_(options) {}

MetricsSnapshotter::~MetricsSnapshotter() { Stop(); }

void MetricsSnapshotter::Start() {
  MutexLock lock(mu_);
  if (running_) return;
  running_ = true;
  stop_ = false;
  thread_ = std::thread([this] { Loop(); });
}

void MetricsSnapshotter::Stop() {
  std::thread joiner;
  {
    MutexLock lock(mu_);
    stop_ = true;
    cv_.NotifyAll();
    if (thread_.joinable()) joiner = std::move(thread_);
    running_ = false;
  }
  if (joiner.joinable()) joiner.join();
}

void MetricsSnapshotter::CaptureNow() {
  MetricsSnapshot snap = capture_();
  MutexLock lock(mu_);
  ring_.push_back(std::move(snap));
  while (ring_.size() > options_.ring_capacity) ring_.pop_front();
}

void MetricsSnapshotter::Loop() {
  const auto interval = std::chrono::milliseconds(
      options_.interval_ms > 0 ? options_.interval_ms : 1000);
  for (;;) {
    CaptureNow();
    const auto deadline = std::chrono::steady_clock::now() + interval;
    MutexLock lock(mu_);
    while (!stop_) {
      if (!cv_.WaitUntil(lock, deadline)) break;  // interval elapsed
    }
    if (stop_) return;
  }
}

size_t MetricsSnapshotter::ring_size() const {
  MutexLock lock(mu_);
  return ring_.size();
}

std::vector<MetricsSnapshot> MetricsSnapshotter::Ring() const {
  MutexLock lock(mu_);
  return std::vector<MetricsSnapshot>(ring_.begin(), ring_.end());
}

bool MetricsSnapshotter::WindowDelta(double seconds, MetricsSnapshot* delta,
                                     double* span_seconds) const {
  MetricsSnapshot newest, base;
  {
    MutexLock lock(mu_);
    if (ring_.size() < 2) return false;
    newest = ring_.back();
    // The newest snapshot at least `seconds` older than the tip — or the
    // oldest we have, for processes younger than the window.
    const uint64_t span_ns =
        seconds <= 0 ? 0 : static_cast<uint64_t>(seconds * 1e9);
    const uint64_t target = newest.captured_mono_ns > span_ns
                                ? newest.captured_mono_ns - span_ns
                                : 0;
    base = ring_.front();
    for (size_t i = ring_.size() - 1; i-- > 0;) {
      if (ring_[i].captured_mono_ns <= target) {
        base = ring_[i];
        break;
      }
    }
  }
  if (newest.captured_mono_ns <= base.captured_mono_ns) return false;
  if (delta != nullptr) *delta = newest.Subtract(base);
  if (span_seconds != nullptr) {
    *span_seconds =
        static_cast<double>(newest.captured_mono_ns -
                            base.captured_mono_ns) /
        1e9;
  }
  return true;
}

namespace {

void AppendF(std::string* out, const char* fmt, ...) {
  char buf[256];
  va_list args;
  va_start(args, fmt);
  int n = std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  if (n > 0) out->append(buf, std::min<size_t>(n, sizeof(buf) - 1));
}

}  // namespace

std::string MetricsSnapshotter::WindowsJson(
    const std::vector<int>& windows_seconds) const {
  std::string out = "{";
  bool first_window = true;
  for (int window : windows_seconds) {
    if (!first_window) out += ",";
    first_window = false;
    AppendF(&out, "\"%ds\":", window);
    MetricsSnapshot delta;
    double span = 0;
    if (!WindowDelta(window, &delta, &span) || span <= 0) {
      out += "{}";
      continue;
    }
    AppendF(&out, "{\"span_seconds\":%.3f,\"rates\":{", span);
    bool first = true;
    for (const auto& [name, value] : delta.counters) {
      AppendF(&out, "%s\"%s\":%.6g", first ? "" : ",", name.c_str(),
              static_cast<double>(value) / span);
      first = false;
    }
    out += "},\"histograms\":{";
    first = true;
    for (const auto& [name, hist] : delta.histograms) {
      AppendF(&out,
              "%s\"%s\":{\"count\":%" PRIu64 ",\"sum\":%" PRIu64
              ",\"p50\":%" PRIu64 ",\"p90\":%" PRIu64 ",\"p99\":%" PRIu64
              ",\"p999\":%" PRIu64 "}",
              first ? "" : ",", name.c_str(), hist.count, hist.sum,
              hist.p50(), hist.p90(), hist.p99(), hist.p999());
      first = false;
    }
    out += "}}";
  }
  out += "}";
  return out;
}

}  // namespace obs
}  // namespace blas

#include "obs/trace.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <utility>

namespace blas {
namespace obs {

namespace {

thread_local TraceContext* g_current_context = nullptr;
thread_local int g_span_depth = 0;

int64_t NowUnixMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

}  // namespace

// --------------------------------------------------------------- render ---

std::string Trace::Render() const {
  char line[320];
  std::string out;
  std::snprintf(line, sizeof(line), "trace %s (%.3f ms)\n", label.c_str(),
                static_cast<double>(total_ns) / 1e6);
  out += line;
  for (const TraceSpan& span : spans) {
    std::string indent(2 * static_cast<size_t>(span.depth + 1), ' ');
    std::snprintf(line, sizeof(line),
                  "%s%s%s%s%s @%.3fms %.3fms", indent.c_str(),
                  span.name.c_str(), span.note.empty() ? "" : " [",
                  span.note.c_str(), span.note.empty() ? "" : "]",
                  static_cast<double>(span.start_ns) / 1e6,
                  static_cast<double>(span.duration_ns) / 1e6);
    out += line;
    if (span.elements + span.page_fetches + span.page_misses +
            span.io_reads >
        0) {
      std::snprintf(line, sizeof(line),
                    " elements=%" PRIu64 " pages=%" PRIu64 " misses=%" PRIu64
                    " io=%" PRIu64,
                    span.elements, span.page_fetches, span.page_misses,
                    span.io_reads);
      out += line;
    }
    out += "\n";
  }
  return out;
}

// -------------------------------------------------------------- context ---

TraceContext::TraceContext(std::string label)
    : start_(std::chrono::steady_clock::now()),
      started_unix_ms_(NowUnixMs()),
      label_(std::move(label)) {}

uint64_t TraceContext::ElapsedNanos() const {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - start_)
          .count());
}

void TraceContext::AddSpan(TraceSpan span) {
  MutexLock lock(mu_);
  spans_.push_back(std::move(span));
}

void TraceContext::RecordPageRead(uint64_t ns) {
  const uint64_t now = ElapsedNanos();
  page_reads_.fetch_add(1, std::memory_order_relaxed);
  page_read_ns_.fetch_add(ns, std::memory_order_relaxed);
  uint64_t first = first_read_ns_.load(std::memory_order_relaxed);
  const uint64_t started = now > ns ? now - ns : 0;
  while (started < first &&
         !first_read_ns_.compare_exchange_weak(first, started,
                                               std::memory_order_relaxed)) {
  }
}

std::shared_ptr<const Trace> TraceContext::Finish() {
  auto trace = std::make_shared<Trace>();
  trace->started_unix_ms = started_unix_ms_;
  const uint64_t reads = page_reads_.load(std::memory_order_relaxed);
  {
    MutexLock lock(mu_);
    trace->label = std::move(label_);
    if (reads > 0) {
      TraceSpan io;
      io.name = "page_io";
      char note[64];
      std::snprintf(note, sizeof(note), "%" PRIu64 " preads", reads);
      io.note = note;
      io.depth = 1;  // nested under whichever stage drove the reads
      io.start_ns = first_read_ns_.load(std::memory_order_relaxed);
      io.duration_ns = page_read_ns_.load(std::memory_order_relaxed);
      io.io_reads = reads;
      spans_.push_back(std::move(io));
    }
    trace->spans = std::move(spans_);
  }
  std::stable_sort(trace->spans.begin(), trace->spans.end(),
                   [](const TraceSpan& a, const TraceSpan& b) {
                     if (a.start_ns != b.start_ns) {
                       return a.start_ns < b.start_ns;
                     }
                     return a.depth < b.depth;
                   });
  trace->total_ns = ElapsedNanos();
  return trace;
}

TraceContext::Scope::Scope(TraceContext* context)
    : prev_(g_current_context) {
  if (context != nullptr) g_current_context = context;
}

TraceContext::Scope::~Scope() { g_current_context = prev_; }

TraceContext* TraceContext::Current() { return g_current_context; }

// ---------------------------------------------------------------- timer ---

SpanTimer::SpanTimer(TraceContext* context, const char* name)
    : context_(context) {
  if (context_ == nullptr) return;
  span_.name = name;
  span_.depth = g_span_depth++;
  span_.start_ns = context_->ElapsedNanos();
}

SpanTimer::~SpanTimer() {
  if (context_ == nullptr) return;
  --g_span_depth;
  span_.duration_ns = context_->ElapsedNanos() - span_.start_ns;
  context_->AddSpan(std::move(span_));
}

void SpanTimer::set_counters(uint64_t elements, uint64_t page_fetches,
                             uint64_t page_misses, uint64_t io_reads) {
  span_.elements = elements;
  span_.page_fetches = page_fetches;
  span_.page_misses = page_misses;
  span_.io_reads = io_reads;
}

// ----------------------------------------------------------------- ring ---

void TraceRing::Push(std::shared_ptr<const Trace> trace) {
  if (capacity_ == 0) return;
  MutexLock lock(mu_);
  ring_.push_back(std::move(trace));
  ++pushed_;
  while (ring_.size() > capacity_) ring_.pop_front();
}

std::vector<std::shared_ptr<const Trace>> TraceRing::Recent() const {
  MutexLock lock(mu_);
  return {ring_.begin(), ring_.end()};
}

uint64_t TraceRing::total_pushed() const {
  MutexLock lock(mu_);
  return pushed_;
}

}  // namespace obs
}  // namespace blas

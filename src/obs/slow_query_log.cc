#include "obs/slow_query_log.h"

#include <cinttypes>
#include <cstdio>
#include <utility>

namespace blas {
namespace obs {

std::string SlowQueryEntry::ToString() const {
  char line[512];
  std::snprintf(line, sizeof(line),
                "slow query (%.3f ms): %s\n"
                "  translator=%s engine=%s rows=%" PRIu64 "\n"
                "  elements=%" PRIu64 " pages=%" PRIu64 " misses=%" PRIu64
                " io_reads=%" PRIu64 "\n",
                millis, query.c_str(), translator.c_str(), engine.c_str(),
                output_rows, elements, page_fetches, page_misses, io_reads);
  std::string out = line;
  if (trace != nullptr) out += trace->Render();
  return out;
}

bool SlowQueryLog::MaybeRecord(SlowQueryEntry entry) {
  if (!enabled() || entry.millis < threshold_millis_) return false;
  MutexLock lock(mu_);
  ring_.push_back(std::move(entry));
  ++recorded_;
  while (ring_.size() > capacity_) ring_.pop_front();
  return true;
}

std::vector<SlowQueryEntry> SlowQueryLog::Entries() const {
  MutexLock lock(mu_);
  return {ring_.begin(), ring_.end()};
}

uint64_t SlowQueryLog::total_recorded() const {
  MutexLock lock(mu_);
  return recorded_;
}

}  // namespace obs
}  // namespace blas

#ifndef BLAS_OBS_SLOW_QUERY_LOG_H_
#define BLAS_OBS_SLOW_QUERY_LOG_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "common/thread_annotations.h"
#include "obs/trace.h"

namespace blas {
namespace obs {

/// One query that crossed the service's slow-query threshold: enough to
/// reproduce (normalized text + knobs) and enough to diagnose (per-stage
/// span breakdown + storage counters) without re-running it.
struct SlowQueryEntry {
  /// Normalized query text (the plan-cache key's text component).
  std::string query;
  std::string translator;
  std::string engine;
  double millis = 0.0;
  uint64_t elements = 0;
  uint64_t page_fetches = 0;
  uint64_t page_misses = 0;
  uint64_t io_reads = 0;
  /// Matches delivered.
  uint64_t output_rows = 0;
  /// Per-stage breakdown; null when the service ran without spans.
  std::shared_ptr<const Trace> trace;

  /// Multi-line human-readable form (one entry of the log).
  std::string ToString() const;
};

/// \brief Bounded, thread-safe log of the slowest-path evidence.
///
/// `threshold_millis <= 0` disables the log entirely (enabled() is the
/// hot-path check; one load, no lock). Recording keeps the most recent
/// `capacity` entries; `total_recorded()` counts every entry ever
/// admitted so a reader can tell when the ring wrapped.
class SlowQueryLog {
 public:
  SlowQueryLog(double threshold_millis, size_t capacity)
      : threshold_millis_(threshold_millis), capacity_(capacity) {}

  bool enabled() const { return threshold_millis_ > 0 && capacity_ > 0; }
  double threshold_millis() const { return threshold_millis_; }
  size_t capacity() const { return capacity_; }

  /// Admits `entry` when its millis crosses the threshold; returns
  /// whether it was admitted.
  bool MaybeRecord(SlowQueryEntry entry);

  /// Oldest first.
  std::vector<SlowQueryEntry> Entries() const;
  uint64_t total_recorded() const;

 private:
  const double threshold_millis_;
  const size_t capacity_;
  mutable Mutex mu_;
  std::deque<SlowQueryEntry> ring_ BLAS_GUARDED_BY(mu_);
  uint64_t recorded_ BLAS_GUARDED_BY(mu_) = 0;
};

}  // namespace obs
}  // namespace blas

#endif  // BLAS_OBS_SLOW_QUERY_LOG_H_

#include "obs/metrics.h"

#include <algorithm>
#include <bit>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>

namespace blas {
namespace obs {

// ------------------------------------------------------------ histogram ---

size_t Histogram::BucketIndex(uint64_t value) {
  if (value < 16) return static_cast<size_t>(value);
  // Octave o holds [2^o, 2^{o+1}), split into 8 linear sub-buckets of
  // width 2^{o-3}. o ranges over [4, 63].
  const int o = std::bit_width(value) - 1;
  const size_t sub = static_cast<size_t>((value - (uint64_t{1} << o)) >>
                                         (o - 3));
  return 16 + static_cast<size_t>(o - 4) * 8 + sub;
}

uint64_t Histogram::BucketLo(size_t i) {
  if (i < 16) return i;
  const size_t o = 4 + (i - 16) / 8;
  const size_t sub = (i - 16) % 8;
  return (uint64_t{1} << o) + (static_cast<uint64_t>(sub) << (o - 3));
}

uint64_t Histogram::BucketHi(size_t i) {
  // Exclusive upper bound == next bucket's lower bound; the last bucket
  // tops out the domain.
  if (i + 1 >= kBuckets) return UINT64_MAX;
  return BucketLo(i + 1);
}

Histogram::Shard& Histogram::shard_for_this_thread() {
  static std::atomic<size_t> next{0};
  thread_local const size_t mine =
      next.fetch_add(1, std::memory_order_relaxed) % kShards;
  return shards_[mine];
}

void Histogram::Record(uint64_t value) {
  Shard& shard = shard_for_this_thread();
  shard.buckets[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
  shard.sum.fetch_add(value, std::memory_order_relaxed);
  uint64_t seen = shard.max.load(std::memory_order_relaxed);
  while (value > seen &&
         !shard.max.compare_exchange_weak(seen, value,
                                          std::memory_order_relaxed)) {
  }
}

std::array<uint64_t, Histogram::kBuckets> Histogram::Snapshot() const {
  std::array<uint64_t, kBuckets> merged{};
  for (const Shard& shard : shards_) {
    for (size_t i = 0; i < kBuckets; ++i) {
      merged[i] += shard.buckets[i].load(std::memory_order_relaxed);
    }
  }
  return merged;
}

uint64_t Histogram::count() const {
  uint64_t total = 0;
  for (uint64_t c : Snapshot()) total += c;
  return total;
}

uint64_t Histogram::sum() const {
  uint64_t total = 0;
  for (const Shard& shard : shards_) {
    total += shard.sum.load(std::memory_order_relaxed);
  }
  return total;
}

uint64_t Histogram::max_recorded() const {
  uint64_t m = 0;
  for (const Shard& shard : shards_) {
    m = std::max(m, shard.max.load(std::memory_order_relaxed));
  }
  return m;
}

uint64_t Histogram::ValueAtQuantile(double q) const {
  const std::array<uint64_t, kBuckets> merged = Snapshot();
  uint64_t total = 0;
  for (uint64_t c : merged) total += c;
  if (total == 0) return 0;
  q = std::min(std::max(q, 0.0), 1.0);
  // Rank of the q-th order statistic, 1-based, matching the
  // nearest-rank definition a sorted-vector oracle uses.
  uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(total));
  if (rank < 1) rank = 1;
  if (rank > total) rank = total;
  uint64_t seen = 0;
  for (size_t i = 0; i < kBuckets; ++i) {
    seen += merged[i];
    if (seen >= rank) {
      const uint64_t lo = BucketLo(i);
      const uint64_t hi = BucketHi(i);
      // Midpoint, guarding the open-ended top bucket.
      return hi == UINT64_MAX ? lo : lo + (hi - lo) / 2;
    }
  }
  return BucketLo(kBuckets - 1);
}

// ------------------------------------------------------------- registry ---

MetricsRegistry::Entry* MetricsRegistry::GetOrCreate(std::string_view name,
                                                     std::string_view help,
                                                     Entry::Kind kind) {
  MutexLock lock(mu_);
  auto it = entries_.find(name);
  if (it != entries_.end()) {
    return it->second.kind == kind ? &it->second : nullptr;
  }
  Entry entry;
  entry.kind = kind;
  entry.help = std::string(help);
  switch (kind) {
    case Entry::Kind::kCounter:
      entry.counter.reset(new Counter());
      break;
    case Entry::Kind::kGauge:
      entry.gauge.reset(new Gauge());
      break;
    case Entry::Kind::kHistogram:
      entry.histogram.reset(new Histogram());
      break;
    case Entry::Kind::kCallbackGauge:
      break;
  }
  return &entries_.emplace(std::string(name), std::move(entry))
              .first->second;
}

Counter* MetricsRegistry::GetCounter(std::string_view name,
                                     std::string_view help) {
  Entry* entry = GetOrCreate(name, help, Entry::Kind::kCounter);
  return entry == nullptr ? nullptr : entry->counter.get();
}

Gauge* MetricsRegistry::GetGauge(std::string_view name,
                                 std::string_view help) {
  Entry* entry = GetOrCreate(name, help, Entry::Kind::kGauge);
  return entry == nullptr ? nullptr : entry->gauge.get();
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name,
                                         std::string_view help) {
  Entry* entry = GetOrCreate(name, help, Entry::Kind::kHistogram);
  return entry == nullptr ? nullptr : entry->histogram.get();
}

void MetricsRegistry::RegisterCallbackGauge(std::string_view name,
                                            std::string_view help,
                                            std::function<int64_t()> fn) {
  Entry* entry = GetOrCreate(name, help, Entry::Kind::kCallbackGauge);
  if (entry != nullptr) entry->callback = std::move(fn);
}

namespace {

void AppendF(std::string* out, const char* fmt, ...) {
  char buf[256];
  va_list args;
  va_start(args, fmt);
  int n = std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  if (n > 0) out->append(buf, std::min<size_t>(n, sizeof(buf) - 1));
}

}  // namespace

std::string MetricsRegistry::DumpPrometheus() const {
  MutexLock lock(mu_);
  std::string out;
  for (const auto& [name, entry] : entries_) {
    if (!entry.help.empty()) {
      out += "# HELP " + name + " " + entry.help + "\n";
    }
    switch (entry.kind) {
      case Entry::Kind::kCounter:
        out += "# TYPE " + name + " counter\n";
        AppendF(&out, "%s %" PRIu64 "\n", name.c_str(),
                entry.counter->value());
        break;
      case Entry::Kind::kGauge:
        out += "# TYPE " + name + " gauge\n";
        AppendF(&out, "%s %" PRId64 "\n", name.c_str(),
                entry.gauge->value());
        break;
      case Entry::Kind::kCallbackGauge:
        out += "# TYPE " + name + " gauge\n";
        AppendF(&out, "%s %" PRId64 "\n", name.c_str(),
                entry.callback ? entry.callback() : 0);
        break;
      case Entry::Kind::kHistogram: {
        out += "# TYPE " + name + " histogram\n";
        const std::array<uint64_t, Histogram::kBuckets> buckets =
            entry.histogram->Snapshot();
        uint64_t cumulative = 0;
        for (size_t i = 0; i < Histogram::kBuckets; ++i) {
          if (buckets[i] == 0) continue;
          cumulative += buckets[i];
          // Integer samples: everything in buckets 0..i is <= hi - 1.
          AppendF(&out, "%s_bucket{le=\"%" PRIu64 "\"} %" PRIu64 "\n",
                  name.c_str(), Histogram::BucketHi(i) - 1, cumulative);
        }
        AppendF(&out, "%s_bucket{le=\"+Inf\"} %" PRIu64 "\n", name.c_str(),
                cumulative);
        AppendF(&out, "%s_sum %" PRIu64 "\n", name.c_str(),
                entry.histogram->sum());
        AppendF(&out, "%s_count %" PRIu64 "\n", name.c_str(), cumulative);
        break;
      }
    }
  }
  return out;
}

std::string MetricsRegistry::DumpJson() const {
  MutexLock lock(mu_);
  std::string counters, gauges, histograms;
  for (const auto& [name, entry] : entries_) {
    switch (entry.kind) {
      case Entry::Kind::kCounter:
        if (!counters.empty()) counters += ",";
        AppendF(&counters, "\"%s\":%" PRIu64, name.c_str(),
                entry.counter->value());
        break;
      case Entry::Kind::kGauge:
        if (!gauges.empty()) gauges += ",";
        AppendF(&gauges, "\"%s\":%" PRId64, name.c_str(),
                entry.gauge->value());
        break;
      case Entry::Kind::kCallbackGauge:
        if (!gauges.empty()) gauges += ",";
        AppendF(&gauges, "\"%s\":%" PRId64, name.c_str(),
                entry.callback ? entry.callback() : 0);
        break;
      case Entry::Kind::kHistogram: {
        if (!histograms.empty()) histograms += ",";
        const Histogram* h = entry.histogram.get();
        AppendF(&histograms,
                "\"%s\":{\"count\":%" PRIu64 ",\"sum\":%" PRIu64
                ",\"max\":%" PRIu64 ",\"p50\":%" PRIu64 ",\"p90\":%" PRIu64
                ",\"p99\":%" PRIu64 ",\"p999\":%" PRIu64 "}",
                name.c_str(), h->count(), h->sum(), h->max_recorded(),
                h->p50(), h->p90(), h->p99(), h->p999());
        break;
      }
    }
  }
  return "{\"counters\":{" + counters + "},\"gauges\":{" + gauges +
         "},\"histograms\":{" + histograms + "}}";
}

MetricsRegistry& DefaultRegistry() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

}  // namespace obs
}  // namespace blas

#ifndef BLAS_OBS_SNAPSHOT_H_
#define BLAS_OBS_SNAPSHOT_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/thread_annotations.h"
#include "obs/metrics.h"

namespace blas {
namespace obs {

/// \brief Copyable point-in-time state of one Histogram.
///
/// Buckets are stored sparsely ((index, count) pairs, sorted by index,
/// zero counts omitted) so a whole-registry snapshot costs kilobytes, not
/// the 496-slot dense array per histogram — the snapshotter keeps hundreds
/// of these in its ring.
struct HistogramSnapshot {
  /// Non-empty buckets, ascending by bucket index.
  std::vector<std::pair<uint32_t, uint64_t>> buckets;
  uint64_t count = 0;
  uint64_t sum = 0;
  /// Largest sample since the histogram was created. Not windowable:
  /// Subtract keeps the later snapshot's max, which upper-bounds the
  /// window's true max.
  uint64_t max = 0;

  /// Adds `other`'s buckets/count/sum into this (max takes the larger).
  void Merge(const HistogramSnapshot& other);

  /// This snapshot minus an `earlier` one of the same histogram: the
  /// distribution of samples recorded in between. Counts saturate at 0
  /// per bucket, so a registry reset (or mismatched operands) degrades to
  /// empty deltas instead of wrapping.
  HistogramSnapshot Subtract(const HistogramSnapshot& earlier) const;

  /// Same nearest-rank / bucket-midpoint estimate as Histogram's, over
  /// the snapshot's buckets. 0 when empty.
  uint64_t ValueAtQuantile(double q) const;
  uint64_t p50() const { return ValueAtQuantile(0.50); }
  uint64_t p90() const { return ValueAtQuantile(0.90); }
  uint64_t p99() const { return ValueAtQuantile(0.99); }
  uint64_t p999() const { return ValueAtQuantile(0.999); }
};

/// \brief Copyable state of a whole registry (plus any synthetic counters
/// the capturer folds in): what MetricsRegistry::Snapshot() returns and
/// what the MetricsSnapshotter rings.
///
/// Counter and histogram state is cumulative since process start, so two
/// snapshots subtract into an exact per-window view; gauges are levels
/// and Subtract keeps the later value.
struct MetricsSnapshot {
  /// steady_clock at capture — the denominator of every windowed rate.
  uint64_t captured_mono_ns = 0;
  /// system_clock at capture, ms since epoch, for display only.
  int64_t captured_unix_ms = 0;
  std::map<std::string, uint64_t> counters;
  std::map<std::string, int64_t> gauges;
  std::map<std::string, HistogramSnapshot> histograms;

  /// Union with `other`; same-name counters/histograms add, same-name
  /// gauges keep this snapshot's value. Timestamps keep this snapshot's.
  void Merge(const MetricsSnapshot& other);

  /// This snapshot minus an `earlier` one: counter deltas (saturating),
  /// histogram deltas (HistogramSnapshot::Subtract), later gauge values.
  /// Names missing from `earlier` keep their full value (metric created
  /// inside the window).
  MetricsSnapshot Subtract(const MetricsSnapshot& earlier) const;
};

/// \brief Background thread that captures a bounded ring of periodic
/// snapshots and answers windowed questions over it: rates (counter delta
/// over elapsed time) and per-window histogram percentiles — "what was
/// the QPS and p99 over the last 30 seconds", which point-in-time
/// counters cannot answer.
///
/// The capture callback runs on the snapshotter thread (and on callers of
/// CaptureNow) and must be safe from any thread; registry Snapshot()
/// methods are. Window queries interpolate nothing: a "10s" window is the
/// delta between the newest snapshot and the newest one at least ~10s
/// older (or the oldest available), divided by the *actual* span between
/// them — so a freshly started process reports honest rates over the
/// span it has actually observed.
class MetricsSnapshotter {
 public:
  struct Options {
    /// Capture period. The default (1s) matches the ring capacity below
    /// to a 6-minute horizon — enough for 10s/60s/300s windows.
    int interval_ms = 1000;
    size_t ring_capacity = 360;
  };

  explicit MetricsSnapshotter(std::function<MetricsSnapshot()> capture)
      : MetricsSnapshotter(std::move(capture), Options()) {}
  MetricsSnapshotter(std::function<MetricsSnapshot()> capture,
                     Options options);
  ~MetricsSnapshotter();

  MetricsSnapshotter(const MetricsSnapshotter&) = delete;
  MetricsSnapshotter& operator=(const MetricsSnapshotter&) = delete;

  /// Starts the capture thread (idempotent).
  void Start();
  /// Stops and joins it (idempotent; the destructor calls it).
  void Stop();

  /// Captures one snapshot synchronously into the ring — the test hook,
  /// also useful to seed the ring before Start.
  void CaptureNow();

  size_t ring_size() const;
  size_t ring_capacity() const { return options_.ring_capacity; }
  /// Oldest first.
  std::vector<MetricsSnapshot> Ring() const;

  /// Delta over (up to) the last `seconds`: newest snapshot minus the
  /// best base for that window. False when fewer than two snapshots or a
  /// non-positive span. `span_seconds` (optional) receives the actual
  /// elapsed time the delta covers.
  bool WindowDelta(double seconds, MetricsSnapshot* delta,
                   double* span_seconds = nullptr) const;

  /// JSON for /timez and /varz's "windowed" section: one object per
  /// requested window, e.g. {"10s":{"span_seconds":9.98,"rates":
  /// {"blas_service_completed":123.4,...},"histograms":{"blas_query_
  /// latency_ns":{"count":..,"sum":..,"p50":..,"p90":..,"p99":..,
  /// "p999":..},...}},...}. Rates are counter deltas per second; windows
  /// with no data yet appear as {}.
  std::string WindowsJson(const std::vector<int>& windows_seconds) const;

 private:
  void Loop();

  const std::function<MetricsSnapshot()> capture_;
  const Options options_;

  mutable Mutex mu_;
  CondVar cv_;
  std::deque<MetricsSnapshot> ring_ BLAS_GUARDED_BY(mu_);
  bool running_ BLAS_GUARDED_BY(mu_) = false;
  bool stop_ BLAS_GUARDED_BY(mu_) = false;
  std::thread thread_ BLAS_GUARDED_BY(mu_);
};

}  // namespace obs
}  // namespace blas

#endif  // BLAS_OBS_SNAPSHOT_H_

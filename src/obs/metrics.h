#ifndef BLAS_OBS_METRICS_H_
#define BLAS_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/thread_annotations.h"

namespace blas {
namespace obs {

struct MetricsSnapshot;  // obs/snapshot.h

/// \brief Monotonic event counter. One relaxed atomic add per event —
/// safe to hit from any thread, including under storage-layer latches.
class Counter {
 public:
  void Increment() { Add(1); }
  void Add(uint64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  Counter() = default;
  std::atomic<uint64_t> value_{0};
};

/// \brief Point-in-time signed level (frames resident, queue depth).
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t d) { value_.fetch_add(d, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  Gauge() = default;
  std::atomic<int64_t> value_{0};
};

/// \brief Fixed-bucket log-scale histogram of non-negative integer samples
/// (nanoseconds on the latency paths).
///
/// Bucketing is HdrHistogram-style: values below 16 get one bucket each
/// (exact); above that, each power-of-two octave splits into 8 linear
/// sub-buckets, so any reconstructed quantile is within 1/8 octave
/// (~12.5% relative error) of the true sample. 496 buckets cover the full
/// uint64 range — 1 ns to centuries — with no configuration.
///
/// Recording is sharded: each thread picks a fixed shard (round-robin at
/// first use) and pays two relaxed atomic adds, so concurrent hot paths
/// never contend on a lock or a shared cache line. Reads (count / sum /
/// percentiles / exposition) merge the shards into a snapshot; they are
/// safe concurrently with writers and see a consistent-enough view (each
/// cell is read atomically, the set is not fenced).
class Histogram {
 public:
  static constexpr size_t kBuckets = 16 + 60 * 8;  // 496

  void Record(uint64_t value);

  uint64_t count() const;
  /// Sum of recorded values (Prometheus `_sum`).
  uint64_t sum() const;
  uint64_t max_recorded() const;

  /// Inclusive lower bound of bucket `i` / exclusive upper bound.
  static uint64_t BucketLo(size_t i);
  static uint64_t BucketHi(size_t i);
  static size_t BucketIndex(uint64_t value);

  /// Merged per-bucket counts.
  std::array<uint64_t, kBuckets> Snapshot() const;

  /// Value at quantile `q` in [0,1] (0.5 = p50). Returns the midpoint of
  /// the bucket holding the q-th sample — within one sub-bucket of the
  /// true order statistic. 0 when empty.
  uint64_t ValueAtQuantile(double q) const;
  uint64_t p50() const { return ValueAtQuantile(0.50); }
  uint64_t p90() const { return ValueAtQuantile(0.90); }
  uint64_t p99() const { return ValueAtQuantile(0.99); }
  uint64_t p999() const { return ValueAtQuantile(0.999); }

 private:
  friend class MetricsRegistry;
  Histogram() = default;

  static constexpr size_t kShards = 8;
  struct alignas(64) Shard {
    std::array<std::atomic<uint64_t>, kBuckets> buckets{};
    std::atomic<uint64_t> sum{0};
    std::atomic<uint64_t> max{0};
  };
  Shard& shard_for_this_thread();

  std::array<Shard, kShards> shards_;
};

/// \brief Named registry of counters, gauges and histograms with two
/// machine-readable exporters (Prometheus text exposition and JSON).
///
/// Registration (GetX) takes a mutex once per name; the returned pointer
/// is stable for the registry's lifetime, so hot paths register once
/// (e.g. into a function-local static) and then pay only the metric's own
/// atomic. Names must match Prometheus conventions ([a-zA-Z_][a-zA-Z0-9_]*);
/// dumps are sorted by name, so exposition is deterministic.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Returns the existing metric of that name, creating it on first use.
  /// `help` is kept from the first registration. A name registered as one
  /// kind must not be re-requested as another (returns nullptr then).
  Counter* GetCounter(std::string_view name, std::string_view help = "");
  Gauge* GetGauge(std::string_view name, std::string_view help = "");
  Histogram* GetHistogram(std::string_view name, std::string_view help = "");

  /// Gauge whose value is computed at dump time (frame occupancy, queue
  /// depth — anything already counted elsewhere). The callback must stay
  /// valid for the registry's lifetime and be safe from any thread.
  void RegisterCallbackGauge(std::string_view name, std::string_view help,
                             std::function<int64_t()> fn);

  /// Prometheus text exposition format, version 0.0.4: `# HELP` / `# TYPE`
  /// headers, counter/gauge samples, and histograms as cumulative
  /// `_bucket{le="..."}` series (non-empty buckets only, plus `+Inf`) with
  /// `_sum` and `_count`.
  std::string DumpPrometheus() const;

  /// One JSON object: {"counters":{...},"gauges":{...},"histograms":
  /// {name:{"count","sum","max","p50","p90","p99","p999"}}}. Quantiles,
  /// counts and sums are bare JSON numbers (never strings) so scrapers
  /// can compute rates and averages without parsing Prometheus text.
  std::string DumpJson() const;

  /// Copyable state of every metric (see obs/snapshot.h): counters,
  /// gauge levels (callback gauges evaluated now) and full sparse
  /// histogram buckets. Two snapshots subtract into an exact windowed
  /// view; the MetricsSnapshotter rings these. Defined in snapshot.cc.
  MetricsSnapshot Snapshot() const;

 private:
  struct Entry {
    enum class Kind { kCounter, kGauge, kHistogram, kCallbackGauge };
    Kind kind;
    std::string help;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
    std::function<int64_t()> callback;
  };

  Entry* GetOrCreate(std::string_view name, std::string_view help,
                     Entry::Kind kind);

  mutable Mutex mu_;
  /// std::map: stable iteration order -> deterministic exposition. The
  /// map is guarded; the metric objects it owns are deliberately not —
  /// their pointers are handed out for the registry's lifetime and are
  /// internally synchronized (atomics / sharded atomics).
  std::map<std::string, Entry, std::less<>> entries_ BLAS_GUARDED_BY(mu_);
};

/// The process-wide registry. Layers without a service handle (buffer
/// pool, manifest writer, live collection) record here; the query service
/// dumps it alongside its own registry in Statsz().
MetricsRegistry& DefaultRegistry();

}  // namespace obs
}  // namespace blas

#endif  // BLAS_OBS_METRICS_H_

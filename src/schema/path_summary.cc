#include "schema/path_summary.h"

#include <algorithm>
#include <set>
#include <utility>

namespace blas {

std::vector<TagId> SummaryNode::PathTags() const {
  std::vector<TagId> tags;
  for (const SummaryNode* n = this; n->parent != nullptr; n = n->parent) {
    tags.push_back(n->tag);
  }
  std::reverse(tags.begin(), tags.end());
  return tags;
}

SummaryNode* PathSummary::Extend(SummaryNode* parent, TagId tag,
                                 PLabel plabel) {
  for (auto& child : parent->children) {
    if (child->tag == tag) return child.get();
  }
  auto node = std::make_unique<SummaryNode>();
  node->tag = tag;
  node->parent = parent;
  node->depth = parent->depth + 1;
  node->plabel = plabel;
  SummaryNode* raw = node.get();
  parent->children.push_back(std::move(node));
  ++path_count_;
  return raw;
}

namespace {

bool StepMatches(const SummaryStep& step, const SummaryNode* node) {
  return !step.tag.has_value() || *step.tag == node->tag;
}

void CollectDescendants(const SummaryNode* node,
                        std::vector<const SummaryNode*>* out) {
  for (const auto& child : node->children) {
    out->push_back(child.get());
    CollectDescendants(child.get(), out);
  }
}

}  // namespace

std::vector<const SummaryNode*> PathSummary::Expand(
    const std::vector<SummaryStep>& steps) const {
  return ExpandFrom(root_.get(), steps);
}

std::vector<const SummaryNode*> PathSummary::ExpandFrom(
    const SummaryNode* base, const std::vector<SummaryStep>& steps) const {
  if (steps.empty()) return {};
  // Breadth-first search over (summary node, matched step count) states.
  std::set<std::pair<const SummaryNode*, size_t>> seen;
  std::vector<std::pair<const SummaryNode*, size_t>> frontier;
  std::vector<const SummaryNode*> out;

  auto push = [&](const SummaryNode* node, size_t next_step) {
    if (seen.insert({node, next_step}).second) {
      frontier.emplace_back(node, next_step);
    }
  };

  // Seed with matches of step 0.
  std::vector<const SummaryNode*> candidates;
  if (steps[0].descendant) {
    CollectDescendants(base, &candidates);
  } else {
    for (const auto& child : base->children) candidates.push_back(child.get());
  }
  for (const SummaryNode* node : candidates) {
    if (StepMatches(steps[0], node)) push(node, 1);
  }

  std::set<const SummaryNode*> result_set;
  for (size_t i = 0; i < frontier.size(); ++i) {
    auto [node, next] = frontier[i];
    if (next == steps.size()) {
      result_set.insert(node);
      continue;
    }
    const SummaryStep& step = steps[next];
    std::vector<const SummaryNode*> next_candidates;
    if (step.descendant) {
      CollectDescendants(node, &next_candidates);
    } else {
      for (const auto& child : node->children) {
        next_candidates.push_back(child.get());
      }
    }
    for (const SummaryNode* cand : next_candidates) {
      if (StepMatches(step, cand)) push(cand, next + 1);
    }
  }

  out.assign(result_set.begin(), result_set.end());
  // Deterministic order: by plabel.
  std::sort(out.begin(), out.end(),
            [](const SummaryNode* a, const SummaryNode* b) {
              return a->plabel < b->plabel;
            });
  return out;
}

std::string PathSummary::PathString(const SummaryNode* node,
                                    const TagRegistry& tags) const {
  std::string out;
  for (TagId tag : node->PathTags()) {
    out.push_back('/');
    out.append(tags.Name(tag));
  }
  return out;
}

}  // namespace blas

#ifndef BLAS_SCHEMA_PATH_SUMMARY_H_
#define BLAS_SCHEMA_PATH_SUMMARY_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "labeling/plabel.h"
#include "labeling/tag_registry.h"

namespace blas {

/// \brief One distinct simple path of the document (a strong DataGuide
/// node for tree-shaped XML).
struct SummaryNode {
  TagId tag = kSlashTag;
  const SummaryNode* parent = nullptr;  // nullptr for the pseudo-root
  int depth = 0;                        // pseudo-root = 0
  uint64_t count = 0;                   // instances of this path
  PLabel plabel = 0;                    // node P-label of this simple path
  std::vector<std::unique_ptr<SummaryNode>> children;

  /// Tag ids of the path, root first (empty for the pseudo-root).
  std::vector<TagId> PathTags() const;
};

/// One step of a path pattern matched against the summary. `tag == nullopt`
/// is a wildcard (*).
struct SummaryStep {
  bool descendant = false;  // axis preceding this step: true = //
  std::optional<TagId> tag;
};

/// \brief Path summary (DataGuide) of a labeled document.
///
/// This is the "schema information" consumed by the Unfold translator
/// (section 4.1.3): `Expand` enumerates every simple path of the document
/// matching a pattern with descendant axes and wildcards, which is exactly
/// the paper's unfold descendant-axis elimination (for non-recursive
/// schemas it matches the schema graph; for recursive data it is already
/// truncated at the real document depth, the paper's depth-statistics
/// trick). Built incrementally by the labeler at indexing time.
class PathSummary {
 public:
  PathSummary() : root_(std::make_unique<SummaryNode>()) {}

  PathSummary(PathSummary&&) = default;
  PathSummary& operator=(PathSummary&&) = default;

  /// Returns the child of `parent` tagged `tag`, creating it on first use.
  /// `plabel` is the node P-label of the extended path.
  SummaryNode* Extend(SummaryNode* parent, TagId tag, PLabel plabel);

  const SummaryNode* root() const { return root_.get(); }
  SummaryNode* mutable_root() { return root_.get(); }

  /// Number of distinct simple paths.
  size_t path_count() const { return path_count_; }

  /// All summary nodes whose absolute path matches
  /// `/steps[0]/steps[1]/...` (axes inside `steps`; the first step's
  /// `descendant` flag distinguishes a leading // from /).
  std::vector<const SummaryNode*> Expand(
      const std::vector<SummaryStep>& steps) const;

  /// Like Expand, but the pattern is rooted at `base` instead of the
  /// document root (steps[0].descendant selects descendant-or-child of
  /// `base`). Drives the aligned expansion of Unfold branch subqueries.
  std::vector<const SummaryNode*> ExpandFrom(
      const SummaryNode* base, const std::vector<SummaryStep>& steps) const;

  /// Renders a summary node's path as "/t1/t2/...".
  std::string PathString(const SummaryNode* node,
                         const TagRegistry& tags) const;

 private:
  std::unique_ptr<SummaryNode> root_;
  size_t path_count_ = 0;
};

}  // namespace blas

#endif  // BLAS_SCHEMA_PATH_SUMMARY_H_

#ifndef BLAS_COMMON_RESULT_H_
#define BLAS_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace blas {

/// \brief Value-or-error holder (Arrow-style `Result<T>`).
///
/// A `Result<T>` is either an OK status with a `T`, or a non-OK status.
/// Accessing `value()` on an error result aborts in debug builds.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value)  // NOLINT(google-explicit-constructor)
      : value_(std::move(value)) {}

  /// Implicit construction from a non-OK status (failure).
  Result(Status status)  // NOLINT(google-explicit-constructor)
      : status_(std::move(status)) {
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const& { return status_; }
  Status status() && { return std::move(status_); }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value or `fallback` when this result is an error.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace blas

#endif  // BLAS_COMMON_RESULT_H_

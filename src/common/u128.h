#ifndef BLAS_COMMON_U128_H_
#define BLAS_COMMON_U128_H_

#include <cstdint>
#include <string>

namespace blas {

/// 128-bit unsigned integer used for P-labels. The paper requires the label
/// domain m >= (n+1)^h (n = #tags, h = max depth); 64 bits overflow already
/// for XMark-sized alphabets, so the whole P-label pipeline is 128-bit.
using u128 = unsigned __int128;

/// Renders a u128 in decimal (no locale, no allocation surprises).
std::string U128ToString(u128 v);

/// Parses a decimal string into a u128. Returns false on empty input,
/// non-digit characters, or overflow.
bool ParseU128(const std::string& text, u128* out);

/// Returns floor(log2(v)) + 1, i.e. the number of significant bits
/// (0 for v == 0).
int U128BitWidth(u128 v);

/// Computes base^exp, saturating detection: returns false on overflow.
bool U128Pow(u128 base, unsigned exp, u128* out);

}  // namespace blas

#endif  // BLAS_COMMON_U128_H_

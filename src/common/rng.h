#ifndef BLAS_COMMON_RNG_H_
#define BLAS_COMMON_RNG_H_

#include <cstdint>

namespace blas {

/// \brief Deterministic xorshift128+ random generator.
///
/// Used by the data generators and property tests so that every run of the
/// test suite and benchmarks sees identical documents.
class Rng {
 public:
  explicit Rng(uint64_t seed) {
    // SplitMix64 seeding to avoid all-zero and low-entropy states.
    s0_ = SplitMix(&seed);
    s1_ = SplitMix(&seed);
    if (s0_ == 0 && s1_ == 0) s1_ = 0x9e3779b97f4a7c15ULL;
  }

  /// Returns a uniformly distributed 64-bit value.
  uint64_t Next() {
    uint64_t x = s0_;
    const uint64_t y = s1_;
    s0_ = y;
    x ^= x << 23;
    s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
    return s1_ + y;
  }

  /// Returns a value in [0, bound) (bound > 0).
  uint64_t Below(uint64_t bound) { return Next() % bound; }

  /// Returns a value in [lo, hi] inclusive.
  uint64_t Between(uint64_t lo, uint64_t hi) {
    return lo + Below(hi - lo + 1);
  }

  /// Returns true with probability `percent`/100.
  bool Percent(unsigned percent) { return Below(100) < percent; }

 private:
  static uint64_t SplitMix(uint64_t* state) {
    uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  uint64_t s0_;
  uint64_t s1_;
};

}  // namespace blas

#endif  // BLAS_COMMON_RNG_H_

#ifndef BLAS_COMMON_STRING_UTIL_H_
#define BLAS_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace blas {

/// Splits `text` on `sep`, keeping empty fields.
std::vector<std::string> Split(std::string_view text, char sep);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep);

/// Removes leading/trailing ASCII whitespace.
std::string_view Trim(std::string_view text);

/// True if `text` starts with / ends with the given affix.
bool StartsWith(std::string_view text, std::string_view prefix);
bool EndsWith(std::string_view text, std::string_view suffix);

}  // namespace blas

#endif  // BLAS_COMMON_STRING_UTIL_H_

#include "common/u128.h"

#include <algorithm>

namespace blas {

std::string U128ToString(u128 v) {
  if (v == 0) return "0";
  std::string out;
  while (v > 0) {
    out.push_back(static_cast<char>('0' + static_cast<int>(v % 10)));
    v /= 10;
  }
  std::reverse(out.begin(), out.end());
  return out;
}

bool ParseU128(const std::string& text, u128* out) {
  if (text.empty()) return false;
  constexpr u128 kMax = ~static_cast<u128>(0);
  u128 acc = 0;
  for (char c : text) {
    if (c < '0' || c > '9') return false;
    unsigned digit = static_cast<unsigned>(c - '0');
    if (acc > (kMax - digit) / 10) return false;
    acc = acc * 10 + digit;
  }
  *out = acc;
  return true;
}

int U128BitWidth(u128 v) {
  int bits = 0;
  while (v > 0) {
    ++bits;
    v >>= 1;
  }
  return bits;
}

bool U128Pow(u128 base, unsigned exp, u128* out) {
  u128 acc = 1;
  constexpr u128 kMax = ~static_cast<u128>(0);
  for (unsigned i = 0; i < exp; ++i) {
    if (base != 0 && acc > kMax / base) return false;
    acc *= base;
  }
  *out = acc;
  return true;
}

}  // namespace blas

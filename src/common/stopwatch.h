#ifndef BLAS_COMMON_STOPWATCH_H_
#define BLAS_COMMON_STOPWATCH_H_

#include <chrono>

namespace blas {

/// Monotonic wall-clock stopwatch used by the benchmark harnesses.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  /// Elapsed time since construction or the last Reset(), in seconds.
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace blas

#endif  // BLAS_COMMON_STOPWATCH_H_

#ifndef BLAS_COMMON_STOPWATCH_H_
#define BLAS_COMMON_STOPWATCH_H_

#include <chrono>
#include <cstdint>

namespace blas {

/// Monotonic wall-clock stopwatch used by the benchmark harnesses and the
/// observability layer.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  /// Elapsed time since construction or the last Reset(), in seconds.
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

  /// Integer nanoseconds — the latency-histogram feed. Sub-microsecond
  /// spans stay exact here where `double` seconds would round them.
  uint64_t ElapsedNanos() const {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             start_)
            .count());
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace blas

#endif  // BLAS_COMMON_STOPWATCH_H_

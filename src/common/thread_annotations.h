#ifndef BLAS_COMMON_THREAD_ANNOTATIONS_H_
#define BLAS_COMMON_THREAD_ANNOTATIONS_H_

#include <chrono>
#include <condition_variable>
#include <mutex>

// ---------------------------------------------------------------------------
// Clang thread-safety annotations + the annotated synchronization vocabulary
// of this codebase.
//
// Every mutex in src/ is a blas::Mutex, every scoped acquisition a
// blas::MutexLock, every condition variable a blas::CondVar (enforced by
// tools/lint.py invariant 1: no raw std::mutex outside this header). Members
// protected by a mutex carry BLAS_GUARDED_BY(mu_); functions that expect a
// lock already held carry BLAS_REQUIRES(mu_). Under Clang with
// -Wthread-safety (the BLAS_WERROR_THREAD_SAFETY CMake option turns it into
// an error), the compiler then proves, per function, that every guarded
// access happens under its lock — a new race is a compile error, not a TSan
// coin flip. Under GCC (and any compiler without the attributes) everything
// expands to nothing and the wrappers are zero-cost forwarding shims.
//
// Reference: https://clang.llvm.org/docs/ThreadSafetyAnalysis.html
//
// Analysis-friendliness rules used across src/ (the analysis is strictly
// function-local):
//   * condition-variable predicates are written as explicit `while (!cond)
//     cv.Wait(lock);` loops, never wait-with-lambda — a lambda body is
//     analyzed as a separate function that does not hold the lock;
//   * a reference into a guarded container that must outlive the critical
//     section (e.g. a pinned frame, an immutable Doc name) is taken *under*
//     the lock and only immutable-or-atomic fields are touched after;
//   * try-lock sites use `if (mu.TryLock()) { ... mu.Unlock(); }` — the
//     analysis understands the branch.
// ---------------------------------------------------------------------------

#if defined(__clang__) && defined(__has_attribute)
#define BLAS_THREAD_ANNOTATION__(x) __attribute__((x))
#else
#define BLAS_THREAD_ANNOTATION__(x)  // no-op outside Clang
#endif

/// Marks a class as a lockable capability ("mutex" names it in diagnostics).
#define BLAS_CAPABILITY(x) BLAS_THREAD_ANNOTATION__(capability(x))

/// Marks an RAII class whose lifetime equals a capability acquisition.
#define BLAS_SCOPED_CAPABILITY BLAS_THREAD_ANNOTATION__(scoped_lockable)

/// Member may only be accessed while holding the given capability.
#define BLAS_GUARDED_BY(x) BLAS_THREAD_ANNOTATION__(guarded_by(x))

/// Pointer member: the *pointee* may only be accessed while holding `x`.
#define BLAS_PT_GUARDED_BY(x) BLAS_THREAD_ANNOTATION__(pt_guarded_by(x))

/// Lock-ordering declarations (checked under -Wthread-safety-beta).
#define BLAS_ACQUIRED_BEFORE(...) \
  BLAS_THREAD_ANNOTATION__(acquired_before(__VA_ARGS__))
#define BLAS_ACQUIRED_AFTER(...) \
  BLAS_THREAD_ANNOTATION__(acquired_after(__VA_ARGS__))

/// Function requires the capability to be held on entry (and keeps it).
#define BLAS_REQUIRES(...) \
  BLAS_THREAD_ANNOTATION__(requires_capability(__VA_ARGS__))
#define BLAS_REQUIRES_SHARED(...) \
  BLAS_THREAD_ANNOTATION__(requires_shared_capability(__VA_ARGS__))

/// Function acquires the capability (held on return, not on entry).
#define BLAS_ACQUIRE(...) \
  BLAS_THREAD_ANNOTATION__(acquire_capability(__VA_ARGS__))
#define BLAS_ACQUIRE_SHARED(...) \
  BLAS_THREAD_ANNOTATION__(acquire_shared_capability(__VA_ARGS__))

/// Function releases the capability (held on entry, not on return).
#define BLAS_RELEASE(...) \
  BLAS_THREAD_ANNOTATION__(release_capability(__VA_ARGS__))
#define BLAS_RELEASE_SHARED(...) \
  BLAS_THREAD_ANNOTATION__(release_shared_capability(__VA_ARGS__))

/// Function acquires the capability iff it returns `b`.
#define BLAS_TRY_ACQUIRE(b, ...) \
  BLAS_THREAD_ANNOTATION__(try_acquire_capability(b, __VA_ARGS__))

/// Function must NOT be called with the capability held (deadlock guard).
#define BLAS_EXCLUDES(...) BLAS_THREAD_ANNOTATION__(locks_excluded(__VA_ARGS__))

/// Runtime assertion that the capability is held (trusted by the analysis).
#define BLAS_ASSERT_CAPABILITY(x) \
  BLAS_THREAD_ANNOTATION__(assert_capability(x))

/// Function returns a reference to the named capability.
#define BLAS_RETURN_CAPABILITY(x) BLAS_THREAD_ANNOTATION__(lock_returned(x))

/// Escape hatch. Must not appear outside this header (lint invariant 1) —
/// a function that cannot be proven safe gets restructured, not silenced.
#define BLAS_NO_THREAD_SAFETY_ANALYSIS \
  BLAS_THREAD_ANNOTATION__(no_thread_safety_analysis)

namespace blas {

class CondVar;
class MutexLock;

/// \brief Annotated exclusive mutex: a std::mutex the analysis can see.
///
/// Prefer MutexLock for scoped acquisition; the manual Lock/TryLock/Unlock
/// surface exists for the try-lock probing patterns (FrameBudget reclaim)
/// where RAII does not fit.
class BLAS_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() BLAS_ACQUIRE() { mu_.lock(); }
  void Unlock() BLAS_RELEASE() { mu_.unlock(); }
  bool TryLock() BLAS_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  friend class MutexLock;
  std::mutex mu_;
};

/// \brief RAII acquisition of a Mutex (std::lock_guard / std::unique_lock
/// replacement). The capability is held from construction to destruction.
class BLAS_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) BLAS_ACQUIRE(mu) : lock_(mu.mu_) {}
  // User-provided (not `= default`): an attribute cannot precede a
  // defaulted definition, and the release annotation must be visible.
  ~MutexLock() BLAS_RELEASE() {}

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  friend class CondVar;
  std::unique_lock<std::mutex> lock_;
};

/// \brief Condition variable waiting on a MutexLock.
///
/// Wait atomically releases and reacquires the lock; from the analysis'
/// point of view the capability stays held across the call (sound: it is
/// held again before Wait returns, and the caller's predicate loop re-reads
/// guarded state only after reacquisition). Write predicates as explicit
/// loops — see the header comment.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(MutexLock& lock) { cv_.wait(lock.lock_); }
  /// Timed wait against an absolute steady_clock deadline. Returns true
  /// when notified (or woken spuriously), false when the deadline passed.
  /// Compute the deadline *before* taking the lock — a clock read inside
  /// a critical section is a blas-analyze blocking-under-lock finding.
  bool WaitUntil(MutexLock& lock,
                 std::chrono::steady_clock::time_point deadline) {
    return cv_.wait_until(lock.lock_, deadline) == std::cv_status::no_timeout;
  }
  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace blas

#endif  // BLAS_COMMON_THREAD_ANNOTATIONS_H_

#include "common/string_util.h"

namespace blas {

std::vector<std::string> Split(std::string_view text, char sep) {
  std::vector<std::string> out;
  size_t begin = 0;
  while (true) {
    size_t pos = text.find(sep, begin);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(begin));
      return out;
    }
    out.emplace_back(text.substr(begin, pos - begin));
    begin = pos + 1;
  }
}

std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string_view Trim(std::string_view text) {
  size_t begin = 0;
  size_t end = text.size();
  auto is_space = [](char c) {
    return c == ' ' || c == '\t' || c == '\n' || c == '\r';
  };
  while (begin < end && is_space(text[begin])) ++begin;
  while (end > begin && is_space(text[end - 1])) --end;
  return text.substr(begin, end - begin);
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

}  // namespace blas

#ifndef BLAS_COMMON_STATUS_H_
#define BLAS_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <utility>

namespace blas {

/// Error categories used across the library (RocksDB/Arrow-style).
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kParseError,
  kNotFound,
  kOutOfRange,
  kCapacityExceeded,
  kCorruption,
  kUnsupported,
  kInternal,
};

/// \brief Lightweight success/error result used instead of exceptions.
///
/// Library functions that can fail return `Status` (or `Result<T>`, see
/// result.h). An OK status carries no allocation; error statuses carry a
/// code and a human-readable message.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status CapacityExceeded(std::string msg) {
    return Status(StatusCode::kCapacityExceeded, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status Unsupported(std::string msg) {
    return Status(StatusCode::kUnsupported, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Returns "OK" or "<code>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& s);

/// Returns the canonical name of a status code, e.g. "InvalidArgument".
const char* StatusCodeName(StatusCode code);

/// Propagates a non-OK status to the caller.
#define BLAS_RETURN_NOT_OK(expr)                \
  do {                                          \
    ::blas::Status _st = (expr);                \
    if (!_st.ok()) return _st;                  \
  } while (0)

/// Assigns the value of a Result<T> expression or propagates its error.
#define BLAS_ASSIGN_OR_RETURN(lhs, expr)        \
  auto BLAS_CONCAT_(res_, __LINE__) = (expr);   \
  if (!BLAS_CONCAT_(res_, __LINE__).ok())       \
    return BLAS_CONCAT_(res_, __LINE__).status(); \
  lhs = std::move(BLAS_CONCAT_(res_, __LINE__)).value();

#define BLAS_CONCAT_IMPL_(a, b) a##b
#define BLAS_CONCAT_(a, b) BLAS_CONCAT_IMPL_(a, b)

}  // namespace blas

#endif  // BLAS_COMMON_STATUS_H_

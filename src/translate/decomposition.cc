#include "translate/decomposition.h"

#include <cassert>
#include <utility>

namespace blas {

std::string Part::PathString() const {
  std::string out;
  for (const PartStep& step : steps) {
    out.append(step.axis == Axis::kChild ? "/" : "//");
    out.append(step.tag);
  }
  if (value.has_value()) {
    out.append(ValueOpText(value->op));
    out.push_back('"');
    out.append(value->literal);
    out.push_back('"');
  }
  return out;
}

std::string Decomposition::ToString() const {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    const Part& p = parts[i];
    out.append("Q");
    out.append(std::to_string(i));
    out.append(": ");
    out.append(p.PathString());
    if (p.anchor >= 0) {
      out.append("  [anchor Q");
      out.append(std::to_string(p.anchor));
      out.append(p.exact ? ", level = anchor+" : ", level >= anchor+");
      out.append(std::to_string(p.delta));
      out.push_back(']');
    }
    if (p.is_return) out.append("  <return>");
    out.push_back('\n');
  }
  return out;
}

namespace {

/// Work item: decompose the subtree rooted at `node`, whose part begins
/// with `prefix` steps followed by `node` entered via `lead` axis.
struct Fragment {
  const QueryNode* node;
  Axis lead;
  std::vector<PartStep> prefix;
  int anchor;
  bool exact;
};

class Decomposer {
 public:
  Decomposer(DecomposeMode mode) : mode_(mode) {}

  Result<Decomposition> Run(const Query& query) {
    if (!query.root) return Status::InvalidArgument("empty query");
    if (query.return_node() == nullptr) {
      return Status::InvalidArgument("query has no return node");
    }
    std::vector<Fragment> todo;
    todo.push_back(Fragment{query.root.get(), query.root->axis, {}, -1,
                            /*exact=*/query.root->axis == Axis::kChild});
    // Breadth-first over fragments keeps anchors before their children.
    for (size_t i = 0; i < todo.size(); ++i) {
      BLAS_RETURN_NOT_OK(ProcessFragment(todo[i], &todo));
    }
    if (!found_return_) {
      return Status::Internal("decomposition lost the return node");
    }
    return std::move(result_);
  }

 private:
  Status ProcessFragment(const Fragment& frag, std::vector<Fragment>* todo) {
    Part part;
    part.steps = frag.prefix;
    part.anchor = frag.anchor;
    part.exact = frag.exact;

    const QueryNode* node = frag.node;
    Axis axis = frag.lead;
    int below = 0;
    while (true) {
      if (node->tag == kWildcard && mode_ != DecomposeMode::kUnfold) {
        return Status::Unsupported(
            "wildcards require schema information (Unfold)");
      }
      part.steps.push_back(PartStep{axis, node->tag});
      ++below;

      bool ends_here = node->children.empty() || node->IsBranchingPoint();
      // A lone descendant-edge child also ends the part for Split/Push-up
      // (descendant-axis elimination); Unfold keeps the axis inline.
      const QueryNode* only_child =
          node->children.size() == 1 ? node->children[0].get() : nullptr;
      if (!ends_here && only_child->axis == Axis::kDescendant &&
          mode_ != DecomposeMode::kUnfold) {
        ends_here = true;
      }

      if (!ends_here) {
        node = only_child;
        axis = node->axis;
        continue;
      }

      // Close the part at `node`.
      part.value = node->value;
      part.delta = below;
      part.is_return = node->is_return;
      int part_index = static_cast<int>(result_.parts.size());
      if (node->is_return) {
        result_.return_part = part_index;
        found_return_ = true;
      }

      // Cut every child into its own fragment anchored at this part.
      for (const auto& child : node->children) {
        Fragment next;
        next.node = child.get();
        next.anchor = part_index;
        next.exact = child->axis == Axis::kChild;
        if (child->axis == Axis::kDescendant &&
            mode_ != DecomposeMode::kUnfold) {
          // Descendant-axis elimination: restart as a floating suffix path.
          next.lead = Axis::kDescendant;
        } else if (mode_ == DecomposeMode::kSplit) {
          // Branch elimination (algorithm 4): child parts become //q.
          next.lead = Axis::kDescendant;
          // The cut edge is a child axis, so the join keeps the exact
          // level difference (example 4.1).
        } else {
          // Push-up / Unfold: carry the full prefix (algorithm 5).
          next.lead = child->axis;
          next.prefix = part.steps;
        }
        todo->push_back(std::move(next));
      }
      result_.parts.push_back(std::move(part));
      return Status::OK();
    }
  }

  DecomposeMode mode_;
  Decomposition result_;
  bool found_return_ = false;
};

}  // namespace

Result<Decomposition> Decompose(const Query& query, DecomposeMode mode) {
  Decomposer decomposer(mode);
  return decomposer.Run(query);
}

Result<ExecPlan> LowerToPlan(const Decomposition& decomp,
                             const TranslateContext& ctx) {
  if (ctx.tags == nullptr || ctx.codec == nullptr) {
    return Status::InvalidArgument("TranslateContext missing tags/codec");
  }
  ExecPlan plan;
  plan.return_part = decomp.return_part;
  plan.parts.reserve(decomp.parts.size());
  for (const Part& part : decomp.parts) {
    PlanPart out;
    out.scan = PlanPart::Scan::kPlabelAlts;
    out.value = part.value;
    out.label = part.PathString();
    out.anchor = part.anchor;
    out.delta = part.delta;
    if (part.anchor >= 0) {
      out.join = part.exact ? PlanPart::Join::kContainExact
                            : PlanPart::Join::kContainMin;
    }

    // Resolve tags; an unknown tag makes the part provably empty.
    std::vector<TagId> tags;
    tags.reserve(part.steps.size());
    bool known = true;
    for (const PartStep& step : part.steps) {
      assert(step.axis == Axis::kChild || &step == &part.steps.front());
      auto id = ctx.tags->Find(step.tag);
      if (!id.has_value()) {
        known = false;
        break;
      }
      tags.push_back(*id);
    }
    if (known) {
      bool absolute = part.steps.front().axis == Axis::kChild;
      PLabelRange range = ctx.codec->SuffixInterval(tags, absolute);
      if (!range.empty()) out.alts.push_back(PlanAlt{range, {}});
    }
    plan.parts.push_back(std::move(out));
  }
  return plan;
}

Result<ExecPlan> TranslateSplit(const Query& query,
                                const TranslateContext& ctx) {
  BLAS_ASSIGN_OR_RETURN(Decomposition decomp,
                        Decompose(query, DecomposeMode::kSplit));
  return LowerToPlan(decomp, ctx);
}

Result<ExecPlan> TranslatePushUp(const Query& query,
                                 const TranslateContext& ctx) {
  BLAS_ASSIGN_OR_RETURN(Decomposition decomp,
                        Decompose(query, DecomposeMode::kPushUp));
  return LowerToPlan(decomp, ctx);
}

const char* TranslatorName(Translator t) {
  switch (t) {
    case Translator::kDLabel:
      return "D-labeling";
    case Translator::kSplit:
      return "Split";
    case Translator::kPushUp:
      return "Push-up";
    case Translator::kUnfold:
      return "Unfold";
  }
  return "?";
}

Result<ExecPlan> Translate(const Query& query, Translator translator,
                           const TranslateContext& ctx) {
  switch (translator) {
    case Translator::kDLabel:
      return TranslateDLabel(query, ctx);
    case Translator::kSplit:
      return TranslateSplit(query, ctx);
    case Translator::kPushUp:
      return TranslatePushUp(query, ctx);
    case Translator::kUnfold:
      return TranslateUnfold(query, ctx);
  }
  return Status::InvalidArgument("unknown translator");
}

}  // namespace blas

#include "translate/sql_render.h"

#include <cmath>

#include "common/string_util.h"
#include "common/u128.h"
#include "xpath/ast.h"

namespace blas {

namespace {

std::string Alias(size_t i) { return "T" + std::to_string(i + 1); }

/// SQL string literal with embedded single quotes doubled ('' escaping).
std::string SqlLiteral(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 2);
  out.push_back('\'');
  for (char c : text) {
    if (c == '\'') out.push_back('\'');
    out.push_back(c);
  }
  out.push_back('\'');
  return out;
}

std::string TableOf(const PlanPart& part) {
  return part.scan == PlanPart::Scan::kPlabelAlts ? "SP" : "SD";
}

/// Renders the selection predicate of one part ("" when it scans all).
std::string SelectionPredicate(const PlanPart& part, const std::string& t,
                               const TagRegistry& tags) {
  std::string out;
  auto add = [&](const std::string& clause) {
    if (!out.empty()) out.append(" AND ");
    out.append(clause);
  };

  switch (part.scan) {
    case PlanPart::Scan::kPlabelAlts: {
      if (part.alts.empty()) {
        add("FALSE /* tag not in document */");
        break;
      }
      std::string alts;
      for (size_t i = 0; i < part.alts.size(); ++i) {
        const PLabelRange& r = part.alts[i].range;
        if (i > 0) alts.append(" OR ");
        if (r.lo == r.hi) {
          alts.append(t + ".plabel = " + U128ToString(r.lo));
        } else {
          alts.append(t + ".plabel BETWEEN " + U128ToString(r.lo) + " AND " +
                      U128ToString(r.hi));
        }
      }
      add(part.alts.size() > 1 ? "(" + alts + ")" : alts);
      break;
    }
    case PlanPart::Scan::kTag:
      add(t + ".tag = " + SqlLiteral(tags.Name(part.tag)));
      break;
    case PlanPart::Scan::kAllTags:
      break;
  }
  if (part.value.has_value()) {
    const ValuePred& value = *part.value;
    if (value.op == ValueOp::kEq || value.op == ValueOp::kNe) {
      add(t + ".data " + ValueOpText(value.op) + " " +
          SqlLiteral(value.literal));
    } else if (std::isnan(XPathNumber(value.literal))) {
      // Ordered comparison against a non-number matches nothing
      // (XPath 1.0 number() semantics, same as ValuePred::Matches).
      add("FALSE /* non-numeric literal */");
    } else {
      // XPath: non-numeric data is NaN and never matches; dialects that
      // CAST such text to 0 need those rows excluded by the consumer.
      add("CAST(" + t + ".data AS REAL) " + ValueOpText(value.op) + " " +
          std::string(Trim(value.literal)) +
          " /* non-numeric data never matches */");
    }
  }
  if (part.level_eq.has_value()) {
    add(t + ".level = " + std::to_string(*part.level_eq));
  }
  return out;
}

/// Renders the D-join predicate of one part against its anchor alias.
std::string JoinPredicate(const PlanPart& part, const std::string& t,
                          const std::string& anchor) {
  std::string out = anchor + ".start < " + t + ".start AND " + anchor +
                    ".end > " + t + ".end";
  switch (part.join) {
    case PlanPart::Join::kNone:
    case PlanPart::Join::kContain:
      break;
    case PlanPart::Join::kContainMin:
      out.append(" AND " + t + ".level >= " + anchor + ".level + " +
                 std::to_string(part.delta));
      break;
    case PlanPart::Join::kContainExact:
      out.append(" AND " + t + ".level = " + anchor + ".level + " +
                 std::to_string(part.delta));
      break;
    case PlanPart::Join::kContainPerAlt: {
      // One level-alignment disjunct per unfold alternative.
      std::string arms;
      bool all_trivial = true;
      for (const PlanAlt& alt : part.alts) {
        if (alt.anchor_deltas.size() != 1) all_trivial = false;
      }
      for (size_t i = 0; i < part.alts.size(); ++i) {
        const PlanAlt& alt = part.alts[i];
        if (i > 0) arms.append(" OR ");
        arms.append(t + ".plabel = " + U128ToString(alt.range.lo));
        if (!alt.anchor_deltas.empty()) {
          arms.append(" AND " + t + ".level - " + anchor + ".level IN (");
          for (size_t d = 0; d < alt.anchor_deltas.size(); ++d) {
            if (d > 0) arms.append(", ");
            arms.append(std::to_string(alt.anchor_deltas[d]));
          }
          arms.append(")");
        }
      }
      if (!part.alts.empty() && !(all_trivial && part.alts.size() == 1)) {
        out.append(" AND (" + arms + ")");
      } else if (part.alts.size() == 1 &&
                 part.alts[0].anchor_deltas.size() == 1) {
        out.append(" AND " + t + ".level = " + anchor + ".level + " +
                   std::to_string(part.alts[0].anchor_deltas[0]));
      }
      break;
    }
  }
  return out;
}

}  // namespace

std::string RenderSql(const ExecPlan& plan, const TagRegistry& tags) {
  std::string from;
  std::string where;
  auto add_where = [&](const std::string& clause) {
    if (clause.empty()) return;
    if (!where.empty()) where.append("\n  AND ");
    where.append(clause);
  };

  for (size_t i = 0; i < plan.parts.size(); ++i) {
    const PlanPart& part = plan.parts[i];
    if (!from.empty()) from.append(", ");
    from.append(TableOf(part) + " " + Alias(i));
    add_where(SelectionPredicate(part, Alias(i), tags));
    if (part.join != PlanPart::Join::kNone) {
      add_where(JoinPredicate(part, Alias(i), Alias(part.anchor)));
    }
  }

  std::string sql = "SELECT DISTINCT " +
                    Alias(plan.return_part) + ".start\nFROM " + from;
  if (!where.empty()) sql.append("\nWHERE " + where);
  return sql + ";";
}

std::string RenderAlgebra(const ExecPlan& plan, const TagRegistry& tags) {
  std::string out = "pi_{" + Alias(plan.return_part) + ".start}(\n";
  for (size_t i = 0; i < plan.parts.size(); ++i) {
    const PlanPart& part = plan.parts[i];
    std::string sel = SelectionPredicate(part, Alias(i), tags);
    std::string rel = "rho(" + Alias(i) + ", sigma_{" +
                      (sel.empty() ? "true" : sel) + "}(" + TableOf(part) +
                      "))";
    if (i == 0) {
      out.append("  " + rel + "\n");
    } else {
      out.append("  |X|_{" + JoinPredicate(part, Alias(i),
                                           Alias(part.anchor)) +
                 "}\n  " + rel + "\n");
    }
  }
  out.append(")");
  return out;
}

}  // namespace blas

#include "translate/decomposition.h"

namespace blas {

namespace {

/// Pre-order walk emitting one tag-scan part per query node and one D-join
/// per edge (the "traditional" translation the paper compares against:
/// l tags => l - 1 D-joins).
void EmitNode(const QueryNode* node, int parent_part,
              const TranslateContext& ctx, ExecPlan* plan) {
  PlanPart part;
  if (node->tag == kWildcard) {
    part.scan = PlanPart::Scan::kAllTags;
  } else {
    part.scan = PlanPart::Scan::kTag;
    auto id = ctx.tags->Find(node->tag);
    if (id.has_value()) {
      part.tag = *id;
    } else {
      // Tag absent from the document: empty alternatives over SP express
      // a provably empty scan uniformly.
      part.scan = PlanPart::Scan::kPlabelAlts;
      part.alts.clear();
    }
  }
  part.value = node->value;
  part.label = node->tag;

  if (parent_part < 0) {
    part.join = PlanPart::Join::kNone;
    if (node->axis == Axis::kChild) part.level_eq = 1;  // document root
  } else {
    part.anchor = parent_part;
    part.delta = 1;
    // Containment already implies level >= anchor.level + 1, so the
    // descendant axis needs no residual level predicate.
    part.join = node->axis == Axis::kChild ? PlanPart::Join::kContainExact
                                           : PlanPart::Join::kContain;
  }

  int my_index = static_cast<int>(plan->parts.size());
  if (node->is_return) plan->return_part = my_index;
  plan->parts.push_back(std::move(part));
  for (const auto& child : node->children) {
    EmitNode(child.get(), my_index, ctx, plan);
  }
}

}  // namespace

Result<ExecPlan> TranslateDLabel(const Query& query,
                                 const TranslateContext& ctx) {
  if (ctx.tags == nullptr) {
    return Status::InvalidArgument("TranslateContext missing tags");
  }
  if (!query.root) return Status::InvalidArgument("empty query");
  if (query.return_node() == nullptr) {
    return Status::InvalidArgument("query has no return node");
  }
  ExecPlan plan;
  EmitNode(query.root.get(), -1, ctx, &plan);
  return plan;
}

}  // namespace blas

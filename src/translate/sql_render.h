#ifndef BLAS_TRANSLATE_SQL_RENDER_H_
#define BLAS_TRANSLATE_SQL_RENDER_H_

#include <string>

#include "exec/plan.h"
#include "labeling/tag_registry.h"

namespace blas {

/// Renders a translated plan as a standard SQL statement over the SP
/// (P-labeled, clustered by {plabel, start}) or SD (tag-labeled, clustered
/// by {tag, start}) relation — the query translator output of section 4.1.
///
/// Value-predicate rendering: `=` / `!=` compare the data column as a
/// string (embedded quotes escaped); the ordered operators render
/// `CAST(t.data AS REAL) op n`, matching the engines' XPath 1.0 numeric
/// semantics for numeric PCDATA. One documented divergence: XPath turns
/// NON-numeric data into NaN (never matches), while most SQL dialects
/// CAST it to 0 (SQLite) or error (strict engines) — rows whose data is
/// not a number must be excluded by the consumer; the rendered clause
/// carries an inline comment as a reminder.
std::string RenderSql(const ExecPlan& plan, const TagRegistry& tags);

/// Renders the same plan in the relational-algebra style of figure 11
/// (pi / rho / sigma / joins with explicit D-join predicates).
std::string RenderAlgebra(const ExecPlan& plan, const TagRegistry& tags);

}  // namespace blas

#endif  // BLAS_TRANSLATE_SQL_RENDER_H_

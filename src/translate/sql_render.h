#ifndef BLAS_TRANSLATE_SQL_RENDER_H_
#define BLAS_TRANSLATE_SQL_RENDER_H_

#include <string>

#include "exec/plan.h"
#include "labeling/tag_registry.h"

namespace blas {

/// Renders a translated plan as a standard SQL statement over the SP
/// (P-labeled, clustered by {plabel, start}) or SD (tag-labeled, clustered
/// by {tag, start}) relation — the query translator output of section 4.1.
std::string RenderSql(const ExecPlan& plan, const TagRegistry& tags);

/// Renders the same plan in the relational-algebra style of figure 11
/// (pi / rho / sigma / joins with explicit D-join predicates).
std::string RenderAlgebra(const ExecPlan& plan, const TagRegistry& tags);

}  // namespace blas

#endif  // BLAS_TRANSLATE_SQL_RENDER_H_

#ifndef BLAS_TRANSLATE_DECOMPOSITION_H_
#define BLAS_TRANSLATE_DECOMPOSITION_H_

#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "exec/plan.h"
#include "labeling/plabel.h"
#include "labeling/tag_registry.h"
#include "schema/path_summary.h"
#include "xpath/ast.h"

namespace blas {

/// One location step of a decomposed part (axis preceding the tag).
struct PartStep {
  Axis axis = Axis::kChild;
  std::string tag;
};

/// \brief One suffix-path subquery produced by query decomposition
/// (section 4.1).
struct Part {
  /// Root-to-leaf steps. steps[0].axis is the part's lead axis: kChild
  /// means the part is anchored exactly (an absolute simple path for the
  /// root part, or a Push-up part under a '/' lead); kDescendant means a
  /// floating suffix path. Internal steps are all kChild except under
  /// Unfold, where internal descendant axes survive until expansion.
  std::vector<PartStep> steps;
  /// Value predicate on the part's leaf node.
  std::optional<ValuePred> value;
  /// Index of the part whose leaf anchors this one (-1 for the root part).
  int anchor = -1;
  /// Number of steps between the anchor leaf and this part's leaf.
  int delta = 0;
  /// True when the cut edge was a child axis: leaf.level == anchor.level +
  /// delta. False for descendant cuts: leaf.level >= anchor.level + delta
  /// (the sound completion of the paper's bare-containment D-join; see
  /// DESIGN.md).
  bool exact = false;
  /// True if this part's leaf is the query's return node.
  bool is_return = false;

  /// Renders e.g. "//reference/refinfo" (for plans and debugging).
  std::string PathString() const;
};

/// Decomposition flavor (section 4.1.1-4.1.3).
enum class DecomposeMode {
  kSplit,   // parts restart with '//' at every cut
  kPushUp,  // branch cuts push the anchor's full prefix into the part
  kUnfold,  // Push-up prefixes, but descendant edges stay inside parts
            // for schema expansion
};

/// \brief Result of decomposing a tree query into suffix-path parts plus
/// the ancestor-descendant relationships among their results.
struct Decomposition {
  std::vector<Part> parts;  // anchors precede their children
  int return_part = 0;

  std::string ToString() const;
};

/// Decomposes `query` (algorithms 3-5). Fails with Unsupported for
/// wildcards under kSplit/kPushUp (the paper handles wildcards via the
/// schema, i.e. Unfold).
Result<Decomposition> Decompose(const Query& query, DecomposeMode mode);

/// Inputs shared by all translators.
struct TranslateContext {
  const TagRegistry* tags = nullptr;
  const PLabelCodec* codec = nullptr;
  /// Required by TranslateUnfold only.
  const PathSummary* summary = nullptr;
};

/// Lowers a Split/Push-up decomposition to an executable plan by computing
/// each part's P-label interval (algorithm 1). Used by TranslateSplit and
/// TranslatePushUp; Unfold has its own lowering (schema expansion).
Result<ExecPlan> LowerToPlan(const Decomposition& decomp,
                             const TranslateContext& ctx);

/// The three BLAS translators (section 4.1) and the D-labeling baseline.
Result<ExecPlan> TranslateSplit(const Query& query,
                                const TranslateContext& ctx);
Result<ExecPlan> TranslatePushUp(const Query& query,
                                 const TranslateContext& ctx);
Result<ExecPlan> TranslateUnfold(const Query& query,
                                 const TranslateContext& ctx);
Result<ExecPlan> TranslateDLabel(const Query& query,
                                 const TranslateContext& ctx);

/// Translator selector used by the facade and benchmarks.
enum class Translator {
  kDLabel,
  kSplit,
  kPushUp,
  kUnfold,
};

const char* TranslatorName(Translator t);

Result<ExecPlan> Translate(const Query& query, Translator translator,
                           const TranslateContext& ctx);

}  // namespace blas

#endif  // BLAS_TRANSLATE_DECOMPOSITION_H_

#include <algorithm>
#include <map>
#include <set>
#include <utility>

#include "translate/decomposition.h"

namespace blas {

namespace {

/// Resolves part steps to summary pattern steps. Returns false when a tag
/// does not occur in the document (the part is provably empty).
bool ToSummarySteps(const TagRegistry& tags,
                    const std::vector<PartStep>& steps, size_t begin,
                    std::vector<SummaryStep>* out) {
  out->clear();
  for (size_t i = begin; i < steps.size(); ++i) {
    SummaryStep step;
    step.descendant = steps[i].axis == Axis::kDescendant;
    if (steps[i].tag != kWildcard) {
      auto id = tags.Find(steps[i].tag);
      if (!id.has_value()) return false;
      step.tag = *id;
    }
    out->push_back(step);
  }
  return true;
}

}  // namespace

Result<ExecPlan> TranslateUnfold(const Query& query,
                                 const TranslateContext& ctx) {
  if (ctx.tags == nullptr || ctx.codec == nullptr) {
    return Status::InvalidArgument("TranslateContext missing tags/codec");
  }
  if (ctx.summary == nullptr) {
    return Status::InvalidArgument(
        "Unfold requires schema information (path summary)");
  }
  BLAS_ASSIGN_OR_RETURN(Decomposition decomp,
                        Decompose(query, DecomposeMode::kUnfold));

  ExecPlan plan;
  plan.return_part = decomp.return_part;
  plan.parts.reserve(decomp.parts.size());
  // Alternatives of each processed part, used to align child expansions.
  std::vector<std::vector<const SummaryNode*>> part_nodes(
      decomp.parts.size());

  for (size_t i = 0; i < decomp.parts.size(); ++i) {
    const Part& part = decomp.parts[i];
    PlanPart out;
    out.scan = PlanPart::Scan::kPlabelAlts;
    out.value = part.value;
    out.label = part.PathString();
    out.anchor = part.anchor;
    out.delta = part.delta;

    // The extension below the anchor leaf is the last `delta` steps
    // (for the root part the prefix is empty, so it is the whole path).
    size_t ext_begin = part.steps.size() - static_cast<size_t>(part.delta);
    std::vector<SummaryStep> ext;
    bool resolvable = ToSummarySteps(*ctx.tags, part.steps, ext_begin, &ext);

    if (part.anchor < 0) {
      if (resolvable) {
        // ext[0].descendant already reflects the query's lead axis.
        std::vector<const SummaryNode*> nodes = ctx.summary->Expand(ext);
        for (const SummaryNode* node : nodes) {
          out.alts.push_back(PlanAlt{PLabelRange{node->plabel, node->plabel},
                                     {}});
        }
        part_nodes[i] = std::move(nodes);
      }
    } else {
      out.join = PlanPart::Join::kContainPerAlt;
      if (resolvable) {
        // Aligned expansion: unfold the extension below every anchor
        // alternative; remember which level distances realize each
        // expanded path (section 4.1.3, made sound for recursive schemas).
        std::map<const SummaryNode*, std::set<int32_t>> found;
        for (const SummaryNode* anchor_node : part_nodes[part.anchor]) {
          for (const SummaryNode* node :
               ctx.summary->ExpandFrom(anchor_node, ext)) {
            found[node].insert(
                static_cast<int32_t>(node->depth - anchor_node->depth));
          }
        }
        for (const auto& [node, deltas] : found) {
          PlanAlt alt;
          alt.range = PLabelRange{node->plabel, node->plabel};
          alt.anchor_deltas.assign(deltas.begin(), deltas.end());
          out.alts.push_back(std::move(alt));
          part_nodes[i].push_back(node);
        }
        std::sort(out.alts.begin(), out.alts.end(),
                  [](const PlanAlt& a, const PlanAlt& b) {
                    return a.range.lo < b.range.lo;
                  });
        std::sort(part_nodes[i].begin(), part_nodes[i].end(),
                  [](const SummaryNode* a, const SummaryNode* b) {
                    return a->plabel < b->plabel;
                  });
      }
    }
    plan.parts.push_back(std::move(out));
  }
  return plan;
}

}  // namespace blas

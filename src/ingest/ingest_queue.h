#ifndef BLAS_INGEST_INGEST_QUEUE_H_
#define BLAS_INGEST_INGEST_QUEUE_H_

#include <cstdint>
#include <future>
#include <string>
#include <vector>

#include "common/thread_annotations.h"
#include "ingest/live_collection.h"
#include "service/thread_pool.h"

namespace blas {

/// \brief Background ingestion pipeline over a LiveCollection.
///
/// Each submission runs parse -> label -> SavePagedIndex -> publish on a
/// worker of the supplied pool (the query service shares its pool, so
/// ingestion and queries compete for the same threads under one
/// backpressure policy). Completion comes back through a future; queries
/// running meanwhile keep draining whatever epoch they pinned.
///
/// A batch submission indexes its documents within one task and
/// publishes them as ONE epoch / one manifest record — readers never
/// observe a half-applied batch.
class IngestQueue {
 public:
  /// One document mutation of a (possibly batched) submission.
  struct DocOp {
    ManifestOp::Kind kind = ManifestOp::Kind::kAdd;
    std::string name;
    /// XML text for kAdd/kReplace; ignored for kRemove.
    std::string xml;
  };

  /// Both the collection and the pool must outlive the queue.
  IngestQueue(LiveCollection* collection, ThreadPool* pool);
  ~IngestQueue();

  IngestQueue(const IngestQueue&) = delete;
  IngestQueue& operator=(const IngestQueue&) = delete;

  std::future<Status> SubmitAdd(std::string name, std::string xml);
  std::future<Status> SubmitReplace(std::string name, std::string xml);
  std::future<Status> SubmitRemove(std::string name);

  /// Indexes every document of `ops`, then publishes the whole batch
  /// atomically (one epoch). Any indexing or validation failure fails
  /// the entire batch; nothing publishes.
  std::future<Status> SubmitBatch(std::vector<DocOp> ops);

  /// Blocks until every submission accepted so far has published (or
  /// failed). New submissions may land while draining; they are waited
  /// for too.
  void Drain();

  struct Stats {
    uint64_t submitted = 0;
    uint64_t published = 0;  // submissions whose publish succeeded
    uint64_t failed = 0;
    uint64_t pending = 0;  // accepted, not yet settled
  };
  Stats stats() const;

  LiveCollection* collection() const { return collection_; }

 private:
  std::future<Status> SubmitOps(std::vector<DocOp> ops);
  Status RunOps(const std::vector<DocOp>& ops);

  LiveCollection* const collection_;
  ThreadPool* const pool_;

  mutable Mutex mu_;
  CondVar settled_;
  uint64_t submitted_ BLAS_GUARDED_BY(mu_) = 0;
  uint64_t published_ BLAS_GUARDED_BY(mu_) = 0;
  uint64_t failed_ BLAS_GUARDED_BY(mu_) = 0;
  uint64_t pending_ BLAS_GUARDED_BY(mu_) = 0;
};

}  // namespace blas

#endif  // BLAS_INGEST_INGEST_QUEUE_H_

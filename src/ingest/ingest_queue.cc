#include "ingest/ingest_queue.h"

#include <memory>
#include <utility>

namespace blas {

IngestQueue::IngestQueue(LiveCollection* collection, ThreadPool* pool)
    : collection_(collection), pool_(pool) {}

IngestQueue::~IngestQueue() { Drain(); }

std::future<Status> IngestQueue::SubmitAdd(std::string name, std::string xml) {
  std::vector<DocOp> ops(1);
  ops[0] = DocOp{ManifestOp::Kind::kAdd, std::move(name), std::move(xml)};
  return SubmitOps(std::move(ops));
}

std::future<Status> IngestQueue::SubmitReplace(std::string name,
                                               std::string xml) {
  std::vector<DocOp> ops(1);
  ops[0] = DocOp{ManifestOp::Kind::kReplace, std::move(name), std::move(xml)};
  return SubmitOps(std::move(ops));
}

std::future<Status> IngestQueue::SubmitRemove(std::string name) {
  std::vector<DocOp> ops(1);
  ops[0] = DocOp{ManifestOp::Kind::kRemove, std::move(name), std::string()};
  return SubmitOps(std::move(ops));
}

std::future<Status> IngestQueue::SubmitBatch(std::vector<DocOp> ops) {
  return SubmitOps(std::move(ops));
}

std::future<Status> IngestQueue::SubmitOps(std::vector<DocOp> ops) {
  auto task = std::make_shared<std::packaged_task<Status()>>(
      [this, ops = std::move(ops)]() { return RunOps(ops); });
  std::future<Status> future = task->get_future();
  {
    MutexLock lock(mu_);
    ++submitted_;
    ++pending_;
  }
  if (!pool_->Submit([task] { (*task)(); })) {
    {
      MutexLock lock(mu_);
      ++failed_;
      --pending_;
    }
    settled_.NotifyAll();
    std::promise<Status> refused;
    refused.set_value(Status::Unsupported("ingest pool is shut down"));
    return refused.get_future();
  }
  return future;
}

Status IngestQueue::RunOps(const std::vector<DocOp>& ops) {
  Status result = [&]() -> Status {
    // Index first (the expensive, lock-free part), publish once.
    std::vector<LiveCollection::BatchOp> batch;
    batch.reserve(ops.size());
    for (const DocOp& op : ops) {
      LiveCollection::BatchOp out;
      out.kind = op.kind;
      out.name = op.name;
      if (op.kind != ManifestOp::Kind::kRemove) {
        BLAS_ASSIGN_OR_RETURN(LiveCollection::PreparedDoc doc,
                              collection_->Prepare(op.xml));
        out.doc = std::move(doc);
      }
      batch.push_back(std::move(out));
    }
    return collection_->PublishBatch(std::move(batch));
  }();
  {
    MutexLock lock(mu_);
    result.ok() ? ++published_ : ++failed_;
    --pending_;
  }
  settled_.NotifyAll();
  return result;
}

void IngestQueue::Drain() {
  MutexLock lock(mu_);
  while (pending_ != 0) settled_.Wait(lock);
}

IngestQueue::Stats IngestQueue::stats() const {
  MutexLock lock(mu_);
  return Stats{submitted_, published_, failed_, pending_};
}

}  // namespace blas

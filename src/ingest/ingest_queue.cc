#include "ingest/ingest_queue.h"

#include <memory>
#include <utility>

namespace blas {

IngestQueue::IngestQueue(LiveCollection* collection, ThreadPool* pool)
    : collection_(collection), pool_(pool) {}

IngestQueue::~IngestQueue() { Drain(); }

std::future<Status> IngestQueue::SubmitAdd(std::string name, std::string xml) {
  std::vector<DocOp> ops(1);
  ops[0] = DocOp{ManifestOp::Kind::kAdd, std::move(name), std::move(xml)};
  return SubmitOps(std::move(ops));
}

std::future<Status> IngestQueue::SubmitReplace(std::string name,
                                               std::string xml) {
  std::vector<DocOp> ops(1);
  ops[0] = DocOp{ManifestOp::Kind::kReplace, std::move(name), std::move(xml)};
  return SubmitOps(std::move(ops));
}

std::future<Status> IngestQueue::SubmitRemove(std::string name) {
  std::vector<DocOp> ops(1);
  ops[0] = DocOp{ManifestOp::Kind::kRemove, std::move(name), std::string()};
  return SubmitOps(std::move(ops));
}

std::future<Status> IngestQueue::SubmitBatch(std::vector<DocOp> ops) {
  return SubmitOps(std::move(ops));
}

std::future<Status> IngestQueue::SubmitOps(std::vector<DocOp> ops) {
  auto task = std::make_shared<std::packaged_task<Status()>>(
      [this, ops = std::move(ops)]() { return RunOps(ops); });
  std::future<Status> future = task->get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++submitted_;
    ++pending_;
  }
  if (!pool_->Submit([task] { (*task)(); })) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++failed_;
      --pending_;
    }
    settled_.notify_all();
    std::promise<Status> refused;
    refused.set_value(Status::Unsupported("ingest pool is shut down"));
    return refused.get_future();
  }
  return future;
}

Status IngestQueue::RunOps(const std::vector<DocOp>& ops) {
  Status result = [&]() -> Status {
    // Index first (the expensive, lock-free part), publish once.
    std::vector<LiveCollection::BatchOp> batch;
    batch.reserve(ops.size());
    for (const DocOp& op : ops) {
      LiveCollection::BatchOp out;
      out.kind = op.kind;
      out.name = op.name;
      if (op.kind != ManifestOp::Kind::kRemove) {
        BLAS_ASSIGN_OR_RETURN(LiveCollection::PreparedDoc doc,
                              collection_->Prepare(op.xml));
        out.doc = std::move(doc);
      }
      batch.push_back(std::move(out));
    }
    return collection_->PublishBatch(std::move(batch));
  }();
  {
    std::lock_guard<std::mutex> lock(mu_);
    result.ok() ? ++published_ : ++failed_;
    --pending_;
  }
  settled_.notify_all();
  return result;
}

void IngestQueue::Drain() {
  std::unique_lock<std::mutex> lock(mu_);
  settled_.wait(lock, [this] { return pending_ == 0; });
}

IngestQueue::Stats IngestQueue::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return Stats{submitted_, published_, failed_, pending_};
}

}  // namespace blas

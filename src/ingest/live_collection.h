#ifndef BLAS_INGEST_LIVE_COLLECTION_H_
#define BLAS_INGEST_LIVE_COLLECTION_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "blas/collection.h"
#include "common/thread_annotations.h"
#include "ingest/manifest.h"

namespace blas {

/// \brief One published generation of a live collection: an immutable,
/// epoch-stamped snapshot that readers pin via shared_ptr.
///
/// The embedded BlasCollection shares its member documents with the
/// previous and next generations (copy-on-write: a publish copies the
/// map and swaps only the changed entries), and every cursor opened on
/// it pins the documents it enumerates — so a reader drains a consistent
/// epoch no matter how many publishes happen underneath it.
struct CollectionState {
  uint64_t epoch = 0;
  BlasCollection collection;
  /// Epoch at which each document was last added/replaced — the plan
  /// cache's staleness tag.
  std::map<std::string, uint64_t> doc_epochs;
  /// Directory-relative BLASIDX2 snapshot file per document.
  std::map<std::string, std::string> files;
};

/// Construction options for LiveCollection.
struct LiveOptions {
  /// Paged-open sizing for member documents. When `shared_budget` is
  /// null, Open creates one FrameBudget of `memory_budget` bytes shared
  /// by every member — past, present and future — so the whole live
  /// corpus honours a single memory allowance under churn.
  StorageOptions storage;
  /// Initialize an empty collection when the directory has no MANIFEST.
  bool create_if_missing = true;
  /// Compact the manifest (checkpoint record) after this many delta
  /// records; 0 never compacts.
  size_t checkpoint_every = 64;
  /// BlasOptions for the in-memory indexing pass of Prepare.
  BlasOptions blas;
};

/// \brief A durable, continuously-ingesting document collection that
/// serves queries while documents are added, replaced and removed.
///
/// Layout on disk: `dir/MANIFEST` (the epoch log, see manifest.h) plus
/// one `seg-<n>.blasidx` paged snapshot per live document generation.
/// `Open` replays the manifest, opens every referenced snapshot O(1)
/// against one shared FrameBudget, sweeps orphaned files from earlier
/// crashes, and publishes the recovered epoch.
///
/// Concurrency model:
///   * readers call Snapshot() (or OpenCursor/Execute, which do) — a
///     lock-briefly shared_ptr copy; they never block writers and are
///     never blocked by them;
///   * Prepare runs anywhere, concurrently — parse, label and
///     SavePagedIndex happen entirely off to the side;
///   * publishes are serialized internally: manifest append (fsync'ed)
///     first, then the new state swaps in atomically. A crash at any
///     point recovers to the last fully-appended record's epoch.
///
/// Old generations are reclaimed by refcount: when the last snapshot or
/// cursor pinning a replaced/removed document drops, the document's
/// snapshot file is unlinked from disk.
class LiveCollection {
 private:
  struct FileTomb;

 public:
  /// A document indexed and persisted into the collection directory but
  /// not yet published. Dropping it unpublished deletes its file.
  struct PreparedDoc {
    std::string file;  // directory-relative
    std::shared_ptr<const BlasSystem> system;

   private:
    friend class LiveCollection;
    std::shared_ptr<FileTomb> tomb;
  };

  /// One mutation of a batched publish.
  struct BatchOp {
    ManifestOp::Kind kind = ManifestOp::Kind::kAdd;
    std::string name;
    /// Required for kAdd/kReplace; ignored for kRemove.
    std::optional<PreparedDoc> doc;
  };

  /// Called after each publish, once per changed document, with the
  /// publishing epoch. Runs under the publish lock — keep it cheap (the
  /// query service uses it to invalidate per-document cached plans).
  using ChangeListener =
      std::function<void(const std::string& name, ManifestOp::Kind kind,
                         uint64_t epoch)>;

  /// Opens (or, with `create_if_missing`, initializes) the collection in
  /// `dir`: manifest replay, O(1) paged opens, orphan sweep.
  static Result<std::unique_ptr<LiveCollection>> Open(
      const std::string& dir, const LiveOptions& options = {});

  ~LiveCollection();

  LiveCollection(const LiveCollection&) = delete;
  LiveCollection& operator=(const LiveCollection&) = delete;

  /// The current published generation. Holding the returned pointer pins
  /// every document in it (and their snapshot files) for as long as the
  /// caller keeps it.
  std::shared_ptr<const CollectionState> Snapshot() const;

  uint64_t epoch() const { return Snapshot()->epoch; }
  size_t size() const { return Snapshot()->collection.size(); }

  // ------------------------------------------------------- ingestion ---

  /// Indexes `xml` (parse -> label -> SavePagedIndex) and opens the
  /// resulting snapshot demand-paged against the shared budget. Pure
  /// side work: safe from any thread, no publish happens.
  Result<PreparedDoc> Prepare(std::string_view xml) const;

  /// Atomically publishes a batch as ONE epoch and ONE manifest record:
  /// validate -> append (fsync) -> swap state -> mark obsolete files.
  /// On failure nothing is published and prepared files are deleted.
  Status PublishBatch(std::vector<BatchOp> ops);

  /// Single-document conveniences: Prepare + one-op PublishBatch.
  Status AddDocument(const std::string& name, std::string_view xml);
  Status ReplaceDocument(const std::string& name, std::string_view xml);
  Status RemoveDocument(const std::string& name);

  /// Forces a manifest compaction at the current epoch.
  Status Checkpoint();

  void SetChangeListener(ChangeListener listener);

  // --------------------------------------------------------- queries ---

  /// Pins the current snapshot and opens a scatter-gather cursor over it
  /// (see BlasCollection::OpenCursor). The cursor stays valid across any
  /// number of subsequent publishes.
  Result<CollectionCursor> OpenCursor(
      std::string_view xpath, const QueryOptions& options = {},
      const ScatterOptions& scatter = {}) const;

  /// Pins the current snapshot and runs `xpath` over it.
  Result<BlasCollection::CollectionResult> Execute(
      std::string_view xpath, const QueryOptions& options = {}) const;

  // ----------------------------------------------------------- stats ---

  struct Stats {
    /// Documents published by add/replace since open.
    uint64_t docs_ingested = 0;
    uint64_t docs_removed = 0;
    /// Publishes (epoch bumps) since open.
    uint64_t epochs_published = 0;
    /// Current durable manifest size in bytes.
    uint64_t manifest_bytes = 0;
    /// Manifest records appended since open.
    uint64_t manifest_records = 0;
    /// Checkpoint compactions since open.
    uint64_t checkpoints = 0;
    /// Obsolete snapshot files unlinked after their last pin dropped.
    uint64_t files_reclaimed = 0;
    /// Orphaned files (unreferenced by the manifest) swept at Open.
    uint64_t files_swept = 0;
  };
  Stats stats() const;

  const std::string& dir() const { return dir_; }
  /// The budget every member document draws on.
  const std::shared_ptr<FrameBudget>& budget() const { return budget_; }

 private:
  /// Deletes its snapshot file when the last reference to the document
  /// generation drops — unless the generation is still live (declared
  /// above; defined here).
  struct FileTomb {
    std::string path;  // absolute
    /// True while no published state references the file (unpublished
    /// prepared docs start obsolete; publishing clears it; replace/
    /// remove sets it again).
    std::atomic<bool> obsolete{true};
    std::atomic<bool> published{false};
    std::shared_ptr<std::atomic<uint64_t>> reclaimed;
  };

  LiveCollection(std::string dir, LiveOptions options);

  std::string AbsPath(const std::string& rel) const { return dir_ + "/" + rel; }
  /// Wraps an opened system so its file dies with its last reference.
  std::shared_ptr<const BlasSystem> WrapSystem(
      BlasSystem system, const std::shared_ptr<FileTomb>& tomb) const;
  /// Deletes files in `dir_` that the recovered manifest does not
  /// reference (crash leftovers).
  void SweepOrphans(const std::map<std::string, std::string>& live_files);

  const std::string dir_;
  // The next three are set once inside Open before the collection is
  // returned to the caller, and never written again.
  // blas-analyze: allow(guarded-coverage) -- set once in Open
  LiveOptions options_;
  // blas-analyze: allow(guarded-coverage) -- set once in Open
  std::shared_ptr<FrameBudget> budget_;
  // blas-analyze: allow(guarded-coverage) -- set once in Open
  std::shared_ptr<std::atomic<uint64_t>> files_reclaimed_;

  /// Serializes publishes (manifest append + state swap + tombstones).
  /// The annotations encode the fsync-before-publish protocol: the
  /// manifest writer (durability) is guarded by publish_mu_ and the
  /// published-state pointer (visibility) by state_mu_, with publish_mu_
  /// ordered strictly before state_mu_ — so the only way to swap state_
  /// during a publish is from inside the publish critical section, i.e.
  /// *after* the fsync'ed manifest append that made the epoch durable.
  /// A crash at any point therefore never exposes state the log cannot
  /// replay.
  mutable Mutex publish_mu_ BLAS_ACQUIRED_BEFORE(state_mu_);
  std::optional<ManifestWriter> writer_ BLAS_GUARDED_BY(publish_mu_);
  /// Tombs of live (published, non-obsolete) files, keyed by relative
  /// file name.
  std::map<std::string, std::shared_ptr<FileTomb>> tombs_
      BLAS_GUARDED_BY(publish_mu_);
  ChangeListener listener_ BLAS_GUARDED_BY(publish_mu_);

  /// Guards the published-state pointer only (reader pin path).
  mutable Mutex state_mu_;
  std::shared_ptr<const CollectionState> state_ BLAS_GUARDED_BY(state_mu_);

  /// Next seg-<n>.blasidx suffix.
  mutable std::atomic<uint64_t> file_seq_{0};

  std::atomic<uint64_t> docs_ingested_{0};
  std::atomic<uint64_t> docs_removed_{0};
  std::atomic<uint64_t> epochs_published_{0};
  std::atomic<uint64_t> manifest_records_{0};
  std::atomic<uint64_t> checkpoints_{0};
  std::atomic<uint64_t> files_swept_{0};
};

}  // namespace blas

#endif  // BLAS_INGEST_LIVE_COLLECTION_H_

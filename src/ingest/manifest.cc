#include "ingest/manifest.h"

#include <fcntl.h>
#include <unistd.h>

#include <array>
#include <cstring>
#include <utility>

namespace blas {

namespace {

constexpr char kFileMagic[8] = {'B', 'L', 'A', 'S', 'M', 'A', 'N', '1'};
constexpr uint32_t kVersion = 1;
constexpr uint32_t kRecordMagic = 0x4352424Du;  // "MBRC" little-endian
constexpr uint64_t kHeaderBytes = sizeof(kFileMagic) + sizeof(uint32_t);
constexpr uint32_t kRecordHeaderBytes = 12;  // magic + length + crc
/// A record holds document names and file names — anything near this
/// bound is not a manifest record, it is garbage.
constexpr uint32_t kMaxPayload = 64u << 20;

void PutU32(std::string* out, uint32_t v) {
  char buf[4];
  std::memcpy(buf, &v, 4);
  out->append(buf, 4);
}

void PutU64(std::string* out, uint64_t v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  out->append(buf, 8);
}

/// Bounded little-endian reads over a byte span; false = out of bytes.
struct Reader {
  const char* p;
  size_t left;

  bool U8(uint8_t* v) {
    if (left < 1) return false;
    *v = static_cast<uint8_t>(*p);
    ++p;
    --left;
    return true;
  }
  bool U32(uint32_t* v) {
    if (left < 4) return false;
    std::memcpy(v, p, 4);
    p += 4;
    left -= 4;
    return true;
  }
  bool U64(uint64_t* v) {
    if (left < 8) return false;
    std::memcpy(v, p, 8);
    p += 8;
    left -= 8;
    return true;
  }
  bool Str(std::string* v) {
    uint32_t n = 0;
    if (!U32(&n) || left < n) return false;
    v->assign(p, n);
    p += n;
    left -= n;
    return true;
  }
};

const std::array<uint32_t, 256>& Crc32Table() {
  static const std::array<uint32_t, 256> table = [] {
    std::array<uint32_t, 256> t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

Status Corrupt(const std::string& path, const std::string& what) {
  return Status::Corruption("manifest " + path + ": " + what);
}

/// Applies one replayed record to the state; inconsistent ops mean the
/// log does not describe a reachable history.
Status ApplyRecord(const std::string& path, const ManifestRecord& record,
                   ManifestState* state) {
  if (record.checkpoint) {
    if (record.epoch < state->epoch) {
      return Corrupt(path, "checkpoint epoch regressed");
    }
    state->files.clear();
    state->doc_epochs.clear();
  } else if (record.epoch <= state->epoch && state->records > 0) {
    return Corrupt(path, "record epoch did not ascend");
  }
  for (const ManifestOp& op : record.ops) {
    switch (op.kind) {
      case ManifestOp::Kind::kAdd:
        if (!record.checkpoint && state->files.count(op.name) != 0) {
          return Corrupt(path, "add of existing document: " + op.name);
        }
        if (op.file.empty()) return Corrupt(path, "add without a file");
        state->files[op.name] = op.file;
        state->doc_epochs[op.name] = record.epoch;
        break;
      case ManifestOp::Kind::kReplace:
        if (state->files.count(op.name) == 0) {
          return Corrupt(path, "replace of missing document: " + op.name);
        }
        if (op.file.empty()) return Corrupt(path, "replace without a file");
        state->files[op.name] = op.file;
        state->doc_epochs[op.name] = record.epoch;
        break;
      case ManifestOp::Kind::kRemove:
        if (state->files.erase(op.name) == 0) {
          return Corrupt(path, "remove of missing document: " + op.name);
        }
        state->doc_epochs.erase(op.name);
        break;
      default:
        return Corrupt(path, "unknown op kind");
    }
  }
  state->epoch = record.epoch;
  ++state->records;
  return Status::OK();
}

Status FlushAndSync(std::FILE* file, const std::string& path) {
  if (std::fflush(file) != 0) {
    return Status::Internal("manifest flush failed: " + path);
  }
  if (::fsync(::fileno(file)) != 0) {
    return Status::Internal("manifest fsync failed: " + path);
  }
  return Status::OK();
}

void SyncDir(const std::string& path) {
  size_t slash = path.find_last_of('/');
  std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (dfd >= 0) {
    (void)::fsync(dfd);
    ::close(dfd);
  }
}

std::string EncodeHeader() {
  std::string out(kFileMagic, sizeof(kFileMagic));
  PutU32(&out, kVersion);
  return out;
}

}  // namespace

uint32_t ManifestCrc32(const void* data, size_t n) {
  const auto& table = Crc32Table();
  const unsigned char* p = static_cast<const unsigned char*>(data);
  uint32_t crc = 0xFFFFFFFFu;
  for (size_t i = 0; i < n; ++i) {
    crc = table[(crc ^ p[i]) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

std::string EncodeManifestRecord(const ManifestRecord& record) {
  std::string payload;
  PutU64(&payload, record.epoch);
  payload.push_back(record.checkpoint ? 1 : 0);
  PutU32(&payload, static_cast<uint32_t>(record.ops.size()));
  for (const ManifestOp& op : record.ops) {
    payload.push_back(static_cast<char>(op.kind));
    PutU32(&payload, static_cast<uint32_t>(op.name.size()));
    payload.append(op.name);
    PutU32(&payload, static_cast<uint32_t>(op.file.size()));
    payload.append(op.file);
  }
  std::string out;
  out.reserve(kRecordHeaderBytes + payload.size());
  PutU32(&out, kRecordMagic);
  PutU32(&out, static_cast<uint32_t>(payload.size()));
  PutU32(&out, ManifestCrc32(payload.data(), payload.size()));
  out.append(payload);
  return out;
}

Result<ManifestState> ReplayManifest(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    return Status::NotFound("no manifest at " + path);
  }
  std::string data;
  {
    char buf[1 << 16];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), file)) > 0) {
      data.append(buf, n);
    }
    bool read_error = std::ferror(file) != 0;
    std::fclose(file);
    if (read_error) return Status::Internal("manifest read failed: " + path);
  }

  if (data.size() < kHeaderBytes ||
      std::memcmp(data.data(), kFileMagic, sizeof(kFileMagic)) != 0) {
    return Corrupt(path, "bad file magic");
  }
  uint32_t version = 0;
  std::memcpy(&version, data.data() + sizeof(kFileMagic), 4);
  if (version != kVersion) return Corrupt(path, "unsupported version");

  ManifestState state;
  state.bytes = kHeaderBytes;
  state.record_boundaries.push_back(kHeaderBytes);
  size_t pos = kHeaderBytes;
  while (pos < data.size()) {
    size_t remaining = data.size() - pos;
    if (remaining < kRecordHeaderBytes) {
      state.dropped_partial_tail = true;  // crash mid-append
      break;
    }
    uint32_t magic = 0, length = 0, crc = 0;
    std::memcpy(&magic, data.data() + pos, 4);
    std::memcpy(&length, data.data() + pos + 4, 4);
    std::memcpy(&crc, data.data() + pos + 8, 4);
    if (magic != kRecordMagic) return Corrupt(path, "bad record magic");
    if (length > kMaxPayload) return Corrupt(path, "oversized record");
    if (remaining - kRecordHeaderBytes < length) {
      state.dropped_partial_tail = true;  // crash mid-append
      break;
    }
    const char* payload = data.data() + pos + kRecordHeaderBytes;
    if (ManifestCrc32(payload, length) != crc) {
      return Corrupt(path, "record checksum mismatch");
    }

    ManifestRecord record;
    Reader r{payload, length};
    uint8_t kind = 0;
    uint32_t op_count = 0;
    if (!r.U64(&record.epoch) || !r.U8(&kind) || !r.U32(&op_count) ||
        kind > 1) {
      return Corrupt(path, "malformed record payload");
    }
    record.checkpoint = kind == 1;
    record.ops.reserve(op_count);
    for (uint32_t i = 0; i < op_count; ++i) {
      ManifestOp op;
      uint8_t op_kind = 0;
      if (!r.U8(&op_kind) || op_kind > 2 || !r.Str(&op.name) ||
          !r.Str(&op.file)) {
        return Corrupt(path, "malformed record op");
      }
      op.kind = static_cast<ManifestOp::Kind>(op_kind);
      record.ops.push_back(std::move(op));
    }
    if (r.left != 0) return Corrupt(path, "trailing bytes in record");

    BLAS_RETURN_NOT_OK(ApplyRecord(path, record, &state));
    pos += kRecordHeaderBytes + length;
    state.bytes = pos;
    state.record_boundaries.push_back(pos);
  }
  return state;
}

// ------------------------------------------------------------ writer ---

ManifestWriter::ManifestWriter(std::FILE* file, std::string path,
                               uint64_t bytes)
    : file_(file), path_(std::move(path)), bytes_(bytes) {}

ManifestWriter::ManifestWriter(ManifestWriter&& other) noexcept
    : file_(other.file_),
      path_(std::move(other.path_)),
      bytes_(other.bytes_),
      records_since_compact_(other.records_since_compact_),
      poisoned_(other.poisoned_) {
  other.file_ = nullptr;
}

ManifestWriter& ManifestWriter::operator=(ManifestWriter&& other) noexcept {
  if (this != &other) {
    if (file_ != nullptr) std::fclose(file_);
    file_ = other.file_;
    path_ = std::move(other.path_);
    bytes_ = other.bytes_;
    records_since_compact_ = other.records_since_compact_;
    poisoned_ = other.poisoned_;
    other.file_ = nullptr;
  }
  return *this;
}

ManifestWriter::~ManifestWriter() {
  if (file_ != nullptr) std::fclose(file_);
}

Result<ManifestWriter> ManifestWriter::Create(const std::string& path,
                                              bool truncate_existing) {
  if (!truncate_existing) {
    if (std::FILE* existing = std::fopen(path.c_str(), "rb")) {
      std::fclose(existing);
      return Status::InvalidArgument("manifest already exists: " + path);
    }
  }
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) {
    return Status::Internal("cannot create manifest: " + path);
  }
  std::string header = EncodeHeader();
  if (std::fwrite(header.data(), 1, header.size(), file) != header.size()) {
    std::fclose(file);
    return Status::Internal("manifest header write failed: " + path);
  }
  Status synced = FlushAndSync(file, path);
  if (!synced.ok()) {
    std::fclose(file);
    return synced;
  }
  SyncDir(path);
  return ManifestWriter(file, path, header.size());
}

Result<ManifestWriter> ManifestWriter::OpenAppend(
    const std::string& path, const ManifestState& replayed) {
  // r+b keeps existing bytes; the truncate below discards any torn tail.
  std::FILE* file = std::fopen(path.c_str(), "r+b");
  if (file == nullptr) {
    return Status::NotFound("no manifest at " + path);
  }
  if (::ftruncate(::fileno(file),
                  static_cast<off_t>(replayed.bytes)) != 0 ||
      std::fseek(file, 0, SEEK_END) != 0) {
    std::fclose(file);
    return Status::Internal("cannot truncate manifest tail: " + path);
  }
  return ManifestWriter(file, path, replayed.bytes);
}

Status ManifestWriter::Append(const ManifestRecord& record) {
  if (file_ == nullptr) return Status::Internal("manifest writer moved out");
  if (poisoned_) {
    return Status::Internal("manifest writer is poisoned: " + path_);
  }
  std::string bytes = EncodeManifestRecord(record);
  bool failed =
      std::fwrite(bytes.data(), 1, bytes.size(), file_) != bytes.size();
  if (!failed) failed = !FlushAndSync(file_, path_).ok();
  if (failed) {
    // The stream may have flushed part of the record. Cut the log back
    // to the last clean boundary so a later append (or replay) never
    // sees torn bytes; if even that fails, refuse all further appends.
    std::clearerr(file_);
    if (::ftruncate(::fileno(file_), static_cast<off_t>(bytes_)) != 0 ||
        std::fseek(file_, 0, SEEK_END) != 0) {
      poisoned_ = true;
    }
    return Status::Internal("manifest append failed: " + path_);
  }
  bytes_ += bytes.size();
  ++records_since_compact_;
  return Status::OK();
}

Status ManifestWriter::Compact(
    uint64_t epoch, const std::map<std::string, std::string>& files) {
  if (file_ == nullptr) return Status::Internal("manifest writer moved out");
  if (poisoned_) {
    return Status::Internal("manifest writer is poisoned: " + path_);
  }
  ManifestRecord checkpoint;
  checkpoint.epoch = epoch;
  checkpoint.checkpoint = true;
  checkpoint.ops.reserve(files.size());
  for (const auto& [name, file] : files) {
    checkpoint.ops.push_back(ManifestOp{ManifestOp::Kind::kAdd, name, file});
  }

  const std::string tmp = path_ + ".tmp";
  std::FILE* fresh = std::fopen(tmp.c_str(), "wb");
  if (fresh == nullptr) {
    return Status::Internal("cannot open manifest tmp: " + tmp);
  }
  std::string bytes = EncodeHeader() + EncodeManifestRecord(checkpoint);
  bool failed =
      std::fwrite(bytes.data(), 1, bytes.size(), fresh) != bytes.size();
  if (!failed) failed = !FlushAndSync(fresh, tmp).ok();
  if (std::fclose(fresh) != 0) failed = true;
  if (failed) {
    std::remove(tmp.c_str());
    return Status::Internal("manifest compaction write failed: " + tmp);
  }
  if (std::rename(tmp.c_str(), path_.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::Internal("manifest compaction rename failed: " + path_);
  }
  SyncDir(path_);

  // The old descriptor now points at an unlinked inode; switch to the
  // compacted file for further appends. Failing here poisons the
  // writer: appending to the unlinked inode would acknowledge records
  // no replay could ever see.
  std::FILE* reopened = std::fopen(path_.c_str(), "r+b");
  if (reopened == nullptr ||
      std::fseek(reopened, 0, SEEK_END) != 0) {
    if (reopened != nullptr) std::fclose(reopened);
    poisoned_ = true;
    return Status::Internal("cannot reopen compacted manifest: " + path_);
  }
  std::fclose(file_);
  file_ = reopened;
  bytes_ = bytes.size();
  records_since_compact_ = 0;
  return Status::OK();
}

}  // namespace blas

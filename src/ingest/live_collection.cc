#include "ingest/live_collection.h"

#include <dirent.h>
#include <sys/stat.h>

#include <algorithm>
#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <set>
#include <utility>

#include "common/stopwatch.h"
#include "common/string_util.h"
#include "obs/metrics.h"

namespace blas {

namespace {

constexpr char kManifestName[] = "MANIFEST";
constexpr char kSegSuffix[] = ".blasidx";

/// Process-wide ingest metrics; registered once, recorded per publish
/// (publishes are serialized on publish_mu_, so contention is moot).
struct IngestMetrics {
  obs::Histogram* publish_ns;
  obs::Histogram* manifest_append_ns;
  obs::Counter* epochs_published;

  IngestMetrics() {
    auto& reg = obs::DefaultRegistry();
    publish_ns = reg.GetHistogram(
        "blas_ingest_publish_ns",
        "End-to-end latency of one PublishBatch (validate + fsync + swap)");
    manifest_append_ns = reg.GetHistogram(
        "blas_ingest_manifest_append_ns",
        "Latency of one manifest record append (write + flush + fsync)");
    epochs_published = reg.GetCounter("blas_ingest_epochs_published_total",
                                      "Collection epochs made visible");
  }
};

IngestMetrics& ingest_metrics() {
  static IngestMetrics* m = new IngestMetrics();
  return *m;
}

/// Parses "seg-<n>.blasidx"; nullopt for anything else.
std::optional<uint64_t> SegNumber(const std::string& file) {
  uint64_t n = 0;
  int consumed = 0;
  if (std::sscanf(file.c_str(), "seg-%" SCNu64 ".blasidx%n", &n,
                  &consumed) == 1 &&
      static_cast<size_t>(consumed) == file.size()) {
    return n;
  }
  return std::nullopt;
}

}  // namespace

LiveCollection::LiveCollection(std::string dir, LiveOptions options)
    : dir_(std::move(dir)),
      options_(std::move(options)),
      files_reclaimed_(std::make_shared<std::atomic<uint64_t>>(0)) {}

LiveCollection::~LiveCollection() = default;

Result<std::unique_ptr<LiveCollection>> LiveCollection::Open(
    const std::string& dir, const LiveOptions& options) {
  if (::mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST) {
    return Status::Internal("cannot create collection directory: " + dir);
  }
  // unique_ptr because the publish machinery (mutexes, atomics) pins the
  // object in place.
  std::unique_ptr<LiveCollection> live(new LiveCollection(dir, options));
  // Nobody else can reach `live` yet, but recovery writes publish-guarded
  // fields (writer_, tombs_, state_), so hold the locks anyway: uncontended
  // by construction, and it keeps this function inside the proven protocol.
  MutexLock publish_lock(live->publish_mu_);
  live->budget_ =
      options.storage.shared_budget != nullptr
          ? options.storage.shared_budget
          : std::make_shared<FrameBudget>(options.storage.memory_budget);

  const std::string manifest_path = live->AbsPath(kManifestName);
  Result<ManifestState> replayed = ReplayManifest(manifest_path);
  ManifestState recovered;
  if (replayed.ok()) {
    recovered = std::move(replayed).value();
    BLAS_ASSIGN_OR_RETURN(
        ManifestWriter writer,
        ManifestWriter::OpenAppend(manifest_path, recovered));
    live->writer_.emplace(std::move(writer));
  } else if (replayed.status().code() == StatusCode::kNotFound &&
             options.create_if_missing) {
    BLAS_ASSIGN_OR_RETURN(
        ManifestWriter writer,
        // Recovery runs under publish_mu_ by design: nothing serves
        // until Open returns, so this fsync cannot stall a reader.
        // blas-analyze: allow(blocking-under-lock) -- recovery I/O
        ManifestWriter::Create(manifest_path));
    live->writer_.emplace(std::move(writer));
  } else {
    return replayed.status();
  }

  // Open every recovered document O(1) against the shared budget.
  StorageOptions storage = options.storage;
  storage.shared_budget = live->budget_;
  auto state = std::make_shared<CollectionState>();
  state->epoch = recovered.epoch;
  state->doc_epochs = recovered.doc_epochs;
  state->files = recovered.files;
  uint64_t max_seg = 0;
  for (const auto& [name, file] : recovered.files) {
    BLAS_ASSIGN_OR_RETURN(BlasSystem sys,
                          BlasSystem::OpenPaged(live->AbsPath(file), storage));
    auto tomb = std::make_shared<FileTomb>();
    tomb->path = live->AbsPath(file);
    tomb->obsolete.store(false, std::memory_order_relaxed);
    tomb->published.store(true, std::memory_order_relaxed);
    tomb->reclaimed = live->files_reclaimed_;
    BLAS_RETURN_NOT_OK(state->collection.AddSystem(
        name, live->WrapSystem(std::move(sys), tomb)));
    live->tombs_[file] = std::move(tomb);
    if (std::optional<uint64_t> n = SegNumber(file)) {
      max_seg = std::max(max_seg, *n + 1);
    }
  }
  live->file_seq_.store(max_seg, std::memory_order_relaxed);
  live->SweepOrphans(recovered.files);
  {
    MutexLock state_lock(live->state_mu_);
    live->state_ = std::move(state);
  }
  return live;
}

std::shared_ptr<const BlasSystem> LiveCollection::WrapSystem(
    BlasSystem system, const std::shared_ptr<FileTomb>& tomb) const {
  return std::shared_ptr<const BlasSystem>(
      new BlasSystem(std::move(system)), [tomb](const BlasSystem* sys) {
        // Last pin (state or cursor) dropped: an obsolete generation's
        // snapshot file goes with it. Under the mmap backend, zero-copy
        // PageRefs may still point into the segment's mapping even after
        // every system pin is gone (refs pin the mapping epoch, not the
        // pool) — so the unlink is first offered to the backend, which
        // performs it together with the munmap when the last ref drops.
        // A crash between deferral and that final release leaves a plain
        // orphan file, which SweepOrphans collects on the next open.
        const bool obsolete = tomb->obsolete.load(std::memory_order_acquire);
        const bool deferred =
            obsolete && sys->DeferUnlinkToMapping(tomb->path);
        delete sys;
        if (obsolete) {
          if (!deferred) std::remove(tomb->path.c_str());
          if (tomb->published.load(std::memory_order_relaxed)) {
            tomb->reclaimed->fetch_add(1, std::memory_order_relaxed);
          }
        }
      });
}

void LiveCollection::SweepOrphans(
    const std::map<std::string, std::string>& live_files) {
  std::set<std::string> keep;
  for (const auto& [name, file] : live_files) keep.insert(file);
  DIR* d = ::opendir(dir_.c_str());
  if (d == nullptr) return;
  while (dirent* entry = ::readdir(d)) {
    std::string file = entry->d_name;
    const bool snapshot = EndsWith(file, kSegSuffix);
    const bool torn_tmp = EndsWith(file, ".tmp") && file != "MANIFEST.tmp";
    if ((!snapshot && !torn_tmp) || keep.count(file) != 0) continue;
    if (std::remove(AbsPath(file).c_str()) == 0) {
      files_swept_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  ::closedir(d);
}

std::shared_ptr<const CollectionState> LiveCollection::Snapshot() const {
  MutexLock lock(state_mu_);
  return state_;
}

// ---------------------------------------------------------- ingestion ---

Result<LiveCollection::PreparedDoc> LiveCollection::Prepare(
    std::string_view xml) const {
  BLAS_ASSIGN_OR_RETURN(BlasSystem sys,
                        BlasSystem::FromXml(xml, options_.blas));
  const uint64_t seq = file_seq_.fetch_add(1, std::memory_order_relaxed);
  char buf[48];
  std::snprintf(buf, sizeof(buf), "seg-%" PRIu64 "%s", seq, kSegSuffix);
  PreparedDoc prepared;
  prepared.file = buf;
  BLAS_RETURN_NOT_OK(sys.SavePagedIndex(AbsPath(prepared.file)));

  StorageOptions storage = options_.storage;
  storage.shared_budget = budget_;
  Result<BlasSystem> paged =
      BlasSystem::OpenPaged(AbsPath(prepared.file), storage);
  if (!paged.ok()) {
    std::remove(AbsPath(prepared.file).c_str());
    return std::move(paged).status();
  }
  // The tomb starts obsolete: a prepared doc that never publishes takes
  // its file with it when the caller drops it.
  auto tomb = std::make_shared<FileTomb>();
  tomb->path = AbsPath(prepared.file);
  tomb->reclaimed = files_reclaimed_;
  prepared.system = WrapSystem(std::move(paged).value(), tomb);
  prepared.tomb = std::move(tomb);
  return prepared;
}

Status LiveCollection::PublishBatch(std::vector<BatchOp> ops) {
  if (ops.empty()) return Status::InvalidArgument("empty publish batch");
  Stopwatch publish_timer;
  MutexLock publish_lock(publish_mu_);
  std::shared_ptr<const CollectionState> current = Snapshot();

  // Validate the whole batch against the current state before anything
  // durable happens — a bad op must not half-publish.
  std::set<std::string> touched;
  for (const BatchOp& op : ops) {
    if (op.name.empty()) {
      return Status::InvalidArgument("empty document name");
    }
    if (!touched.insert(op.name).second) {
      return Status::InvalidArgument("duplicate document in batch: " +
                                     op.name);
    }
    const bool exists = current->files.count(op.name) != 0;
    switch (op.kind) {
      case ManifestOp::Kind::kAdd:
        if (exists) {
          return Status::InvalidArgument("document already in collection: " +
                                         op.name);
        }
        break;
      case ManifestOp::Kind::kReplace:
        if (!exists) return Status::NotFound("no such document: " + op.name);
        break;
      case ManifestOp::Kind::kRemove:
        if (!exists) return Status::NotFound("no such document: " + op.name);
        break;
    }
    if (op.kind != ManifestOp::Kind::kRemove &&
        (!op.doc.has_value() || op.doc->system == nullptr)) {
      return Status::InvalidArgument("publish without a prepared document: " +
                                     op.name);
    }
  }

  // Durability first: the record is fsync'ed before the epoch becomes
  // visible, so a crash never publishes state the log cannot replay.
  ManifestRecord record;
  record.epoch = current->epoch + 1;
  record.ops.reserve(ops.size());
  for (const BatchOp& op : ops) {
    record.ops.push_back(ManifestOp{
        op.kind, op.name,
        op.kind == ManifestOp::Kind::kRemove ? std::string() : op.doc->file});
  }
  {
    Stopwatch append_timer;
    // fsync-before-publish: the manifest append MUST be durable before
    // the state swap below, and both must sit under publish_mu_ — that
    // ordering is the crash-consistency protocol, not an accident.
    // blas-analyze: allow(blocking-under-lock) -- fsync-before-publish
    Status appended = writer_->Append(record);
    ingest_metrics().manifest_append_ns->Record(append_timer.ElapsedNanos());
    BLAS_RETURN_NOT_OK(appended);
  }
  manifest_records_.fetch_add(1, std::memory_order_relaxed);

  // Copy-on-write publish: unchanged documents are shared with the
  // previous generation; only the touched entries swap.
  auto next = std::make_shared<CollectionState>();
  next->epoch = record.epoch;
  next->collection = current->collection;
  next->doc_epochs = current->doc_epochs;
  next->files = current->files;
  std::vector<std::string> obsolete_files;
  for (BatchOp& op : ops) {
    if (op.kind != ManifestOp::Kind::kAdd) {
      obsolete_files.push_back(next->files.at(op.name));
    }
    if (op.kind == ManifestOp::Kind::kRemove) {
      (void)next->collection.Remove(op.name);
      next->files.erase(op.name);
      next->doc_epochs.erase(op.name);
      docs_removed_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    PreparedDoc& doc = *op.doc;
    doc.tomb->published.store(true, std::memory_order_relaxed);
    doc.tomb->obsolete.store(false, std::memory_order_release);
    tombs_[doc.file] = doc.tomb;
    (void)next->collection.PutSystem(op.name, doc.system);
    next->files[op.name] = doc.file;
    next->doc_epochs[op.name] = record.epoch;
    docs_ingested_.fetch_add(1, std::memory_order_relaxed);
  }

  {
    MutexLock state_lock(state_mu_);
    state_ = next;
  }
  epochs_published_.fetch_add(1, std::memory_order_relaxed);

  // The replaced/removed generations die when their last pin (an old
  // snapshot or an in-flight cursor) drops; their files follow.
  for (const std::string& file : obsolete_files) {
    auto it = tombs_.find(file);
    if (it != tombs_.end()) {
      it->second->obsolete.store(true, std::memory_order_release);
      tombs_.erase(it);
    }
  }

  if (options_.checkpoint_every > 0 &&
      writer_->records_since_compact() >= options_.checkpoint_every) {
    // Best effort: the uncompacted log is longer, never wrong. Compact
    // rewrites + fsyncs the manifest under publish_mu_ deliberately: a
    // concurrent publish interleaved with the rewrite could drop its
    // record.
    // blas-analyze: allow(blocking-under-lock) -- checkpoint durability
    if (writer_->Compact(next->epoch, next->files).ok()) {
      checkpoints_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  if (listener_) {
    for (const ManifestOp& op : record.ops) {
      listener_(op.name, op.kind, record.epoch);
    }
  }
  IngestMetrics& metrics = ingest_metrics();
  metrics.publish_ns->Record(publish_timer.ElapsedNanos());
  metrics.epochs_published->Increment();
  return Status::OK();
}

Status LiveCollection::AddDocument(const std::string& name,
                                   std::string_view xml) {
  BLAS_ASSIGN_OR_RETURN(PreparedDoc doc, Prepare(xml));
  std::vector<BatchOp> ops(1);
  ops[0].kind = ManifestOp::Kind::kAdd;
  ops[0].name = name;
  ops[0].doc = std::move(doc);
  return PublishBatch(std::move(ops));
}

Status LiveCollection::ReplaceDocument(const std::string& name,
                                       std::string_view xml) {
  BLAS_ASSIGN_OR_RETURN(PreparedDoc doc, Prepare(xml));
  std::vector<BatchOp> ops(1);
  ops[0].kind = ManifestOp::Kind::kReplace;
  ops[0].name = name;
  ops[0].doc = std::move(doc);
  return PublishBatch(std::move(ops));
}

Status LiveCollection::RemoveDocument(const std::string& name) {
  std::vector<BatchOp> ops(1);
  ops[0].kind = ManifestOp::Kind::kRemove;
  ops[0].name = name;
  return PublishBatch(std::move(ops));
}

Status LiveCollection::Checkpoint() {
  MutexLock publish_lock(publish_mu_);
  std::shared_ptr<const CollectionState> current = Snapshot();
  // Same protocol as PublishBatch: the compacted manifest must be
  // durable before the next publish can append to it.
  // blas-analyze: allow(blocking-under-lock) -- checkpoint durability
  BLAS_RETURN_NOT_OK(writer_->Compact(current->epoch, current->files));
  checkpoints_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

void LiveCollection::SetChangeListener(ChangeListener listener) {
  MutexLock publish_lock(publish_mu_);
  listener_ = std::move(listener);
}

// ------------------------------------------------------------ queries ---

Result<CollectionCursor> LiveCollection::OpenCursor(
    std::string_view xpath, const QueryOptions& options,
    const ScatterOptions& scatter) const {
  // The cursor pins every document of this generation at open; the state
  // object itself may be released as soon as the cursor exists.
  std::shared_ptr<const CollectionState> state = Snapshot();
  return state->collection.OpenCursor(xpath, options, scatter);
}

Result<BlasCollection::CollectionResult> LiveCollection::Execute(
    std::string_view xpath, const QueryOptions& options) const {
  std::shared_ptr<const CollectionState> state = Snapshot();
  return state->collection.Execute(xpath, options);
}

// -------------------------------------------------------------- stats ---

LiveCollection::Stats LiveCollection::stats() const {
  Stats s;
  s.docs_ingested = docs_ingested_.load(std::memory_order_relaxed);
  s.docs_removed = docs_removed_.load(std::memory_order_relaxed);
  s.epochs_published = epochs_published_.load(std::memory_order_relaxed);
  s.manifest_records = manifest_records_.load(std::memory_order_relaxed);
  s.checkpoints = checkpoints_.load(std::memory_order_relaxed);
  s.files_reclaimed = files_reclaimed_->load(std::memory_order_relaxed);
  s.files_swept = files_swept_.load(std::memory_order_relaxed);
  {
    MutexLock publish_lock(publish_mu_);
    if (writer_.has_value()) s.manifest_bytes = writer_->bytes();
  }
  return s;
}

}  // namespace blas

#ifndef BLAS_INGEST_MANIFEST_H_
#define BLAS_INGEST_MANIFEST_H_

#include <cstdint>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace blas {

// ------------------------------------------------------------------------
// MANIFEST — the append-only, checksummed log that makes a live
// collection durable. Every published epoch appends exactly one record;
// a record boundary therefore *is* an epoch boundary, and replaying the
// log after a crash recovers exactly the last fully-published epoch.
//
// Layout:
//
//   [8]  file magic "BLASMAN1"
//   [4]  version (little-endian u32, currently 1)
//   then zero or more records, each:
//   [4]  record magic 0x4352424Du ("MBRC")
//   [4]  payload length (u32)
//   [4]  CRC-32 of the payload bytes
//   [..] payload:
//          u64 epoch
//          u8  kind            (0 = delta, 1 = checkpoint)
//          u32 op count
//          per op: u8 op kind  (0 = add, 1 = replace, 2 = remove)
//                  u32 name length, name bytes
//                  u32 file length, file bytes (empty for remove)
//
// A checkpoint record lists the *entire* collection (all ops are adds)
// and resets the replayed state — compaction rewrites the log as a
// header plus one checkpoint via the tmp + fsync + rename idiom, so the
// log stays O(collection) instead of O(history).
//
// Replay rules (the recovery contract):
//   * header magic/version mismatch            -> Corruption;
//   * a record cut short by a crash — fewer bytes left than the record
//     header or its declared payload — is a *partial tail*: dropped,
//     recovery lands on the previous record boundary (= epoch);
//   * a length-complete record whose CRC does not match, whose record
//     magic is wrong, or whose payload does not parse exactly
//                                              -> Corruption (bit rot is
//     rejected, never silently skipped);
//   * epochs must ascend (a checkpoint may repeat the epoch it
//     compacts); ops must be consistent with the replayed state (add of
//     an existing name, remove/replace of a missing one -> Corruption).
// ------------------------------------------------------------------------

/// One document mutation inside a manifest record.
struct ManifestOp {
  enum class Kind : uint8_t { kAdd = 0, kReplace = 1, kRemove = 2 };
  Kind kind = Kind::kAdd;
  std::string name;
  /// Directory-relative BLASIDX2 snapshot file; empty for kRemove.
  std::string file;
};

/// One atomically-published epoch: every op in the record becomes visible
/// together or (after a crash before the record completed) not at all.
struct ManifestRecord {
  uint64_t epoch = 0;
  /// Full listing (compaction); replay resets the map first.
  bool checkpoint = false;
  std::vector<ManifestOp> ops;
};

/// The state a manifest replays to.
struct ManifestState {
  /// Last fully-published epoch (0 for an empty log).
  uint64_t epoch = 0;
  /// Document name -> directory-relative snapshot file.
  std::map<std::string, std::string> files;
  /// Document name -> epoch of the record that last added/replaced it.
  std::map<std::string, uint64_t> doc_epochs;
  /// Records applied.
  uint64_t records = 0;
  /// Bytes of header plus applied records — the durable prefix. A writer
  /// reopening the log truncates to this before appending.
  uint64_t bytes = 0;
  /// True when a crash-torn partial record was dropped from the tail.
  bool dropped_partial_tail = false;
  /// File offset after the header and after each applied record — every
  /// valid crash point (the recovery tests cut the file at each).
  std::vector<uint64_t> record_boundaries;
};

/// Replays `path` under the rules above.
Result<ManifestState> ReplayManifest(const std::string& path);

/// Serializes one record (header + checksummed payload) — the writer's
/// append unit, exposed for tests that build or corrupt logs by hand.
std::string EncodeManifestRecord(const ManifestRecord& record);

/// \brief Appender for the manifest log. Not thread-safe: the live
/// collection serializes publishes.
class ManifestWriter {
 public:
  /// Creates a fresh log (header only, fsync'ed). Fails if a log already
  /// exists and `truncate_existing` is false.
  static Result<ManifestWriter> Create(const std::string& path,
                                       bool truncate_existing = false);

  /// Opens an existing log for appending after a replay. The file is
  /// first truncated to `replayed.bytes`, discarding any crash-torn tail
  /// so new records land on a clean boundary.
  static Result<ManifestWriter> OpenAppend(const std::string& path,
                                           const ManifestState& replayed);

  ManifestWriter(ManifestWriter&& other) noexcept;
  ManifestWriter& operator=(ManifestWriter&& other) noexcept;
  ManifestWriter(const ManifestWriter&) = delete;
  ManifestWriter& operator=(const ManifestWriter&) = delete;
  ~ManifestWriter();

  /// Appends one record and makes it durable (flush + fsync) before
  /// returning. On a write error the writer truncates back to the
  /// previous record boundary so later appends land on a clean log; if
  /// even that fails the writer poisons itself (every further Append
  /// fails) rather than risk appending after torn bytes.
  Status Append(const ManifestRecord& record);

  /// Rewrites the log as header + one checkpoint record holding `state`
  /// (tmp + fsync + atomic rename, like the snapshot writers), then
  /// switches this writer to the compacted file. On failure *before* the
  /// rename the old log keeps appending — compaction stays an
  /// optimization. If the rename lands but the compacted file cannot be
  /// reopened, the writer poisons itself: appending to the old (now
  /// unlinked) inode would acknowledge publishes no replay could see.
  Status Compact(uint64_t epoch,
                 const std::map<std::string, std::string>& files);

  /// Bytes in the durable log (header + appended records).
  uint64_t bytes() const { return bytes_; }
  /// True once the writer can no longer guarantee a clean log (failed
  /// truncate-after-torn-append, or a compacted file it cannot reopen).
  bool poisoned() const { return poisoned_; }
  /// Records appended since the last Compact (or open).
  uint64_t records_since_compact() const { return records_since_compact_; }
  const std::string& path() const { return path_; }

 private:
  ManifestWriter(std::FILE* file, std::string path, uint64_t bytes);

  std::FILE* file_ = nullptr;
  std::string path_;
  uint64_t bytes_ = 0;
  uint64_t records_since_compact_ = 0;
  bool poisoned_ = false;
};

/// CRC-32 (IEEE, reflected) over `data` — the manifest's record checksum,
/// exposed for tests that craft corrupt records.
uint32_t ManifestCrc32(const void* data, size_t n);

}  // namespace blas

#endif  // BLAS_INGEST_MANIFEST_H_
